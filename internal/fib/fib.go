// Package fib implements a router forwarding table: longest-prefix-match
// over routes with ECMP next-hop sets, per-source administrative distance,
// and — crucially for F²Tree — fallback to shorter prefixes when every next
// hop of a longer match is locally known to be unusable.
//
// That fallback is the data-plane mechanism the paper relies on (§II-B):
// the static backup routes (DCN /16 via the right across neighbor, covering
// /15 via the left across neighbor) are pre-installed under the OSPF /24s
// and win a lookup only when the /24's next hops are all dead.
package fib

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/detsort"
	"repro/internal/netaddr"
)

// Source identifies the protocol that installed a route. Lower values win
// when the same prefix is installed by several sources (administrative
// distance).
type Source int

// Route sources in ascending administrative distance. Only one routing
// protocol runs at a time in the simulator, so the OSPF/BGP relative order
// never decides a lookup.
const (
	Connected Source = iota + 1
	Static
	OSPF
	BGP
)

// String returns the conventional name of the source.
func (s Source) String() string {
	switch s {
	case Connected:
		return "connected"
	case Static:
		return "static"
	case OSPF:
		return "ospf"
	case BGP:
		return "bgp"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// NextHop is one egress choice: the local port to send on and the neighbor
// address reached through it.
type NextHop struct {
	Port int
	Via  netaddr.Addr
}

// String formats the next hop for diagnostics.
func (n NextHop) String() string {
	return fmt.Sprintf("via %v port %d", n.Via, n.Port)
}

// HopLess is the canonical next-hop order (port, then neighbor address).
// Every ECMP set in the simulator is sorted with it so that route
// installation is deterministic; it is the comparator to pass to
// detsort.KeysFunc when extracting hops from a set.
func HopLess(a, b NextHop) bool {
	if a.Port != b.Port {
		return a.Port < b.Port
	}
	return a.Via < b.Via
}

// Route is a prefix with its ECMP next-hop set, installed by a source.
type Route struct {
	Prefix   netaddr.Prefix
	Source   Source
	NextHops []NextHop
}

// FlowKey is the five-tuple ECMP hashes on (RFC 2992 style hashing).
type FlowKey struct {
	Src, Dst         netaddr.Addr
	Proto            uint8
	SrcPort, DstPort uint16
}

// Hash returns a stable FNV-1a hash of the five-tuple. It runs once per
// forwarded packet per hop (ECMP pick), so it is written closure-free.
//
//f2tree:hotpath
func (k FlowKey) Hash() uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 24; i >= 0; i -= 8 {
		h = (h ^ uint32(byte(k.Src>>i))) * prime
	}
	for i := 24; i >= 0; i -= 8 {
		h = (h ^ uint32(byte(k.Dst>>i))) * prime
	}
	h = (h ^ uint32(k.Proto)) * prime
	h = (h ^ uint32(byte(k.SrcPort>>8))) * prime
	h = (h ^ uint32(byte(k.SrcPort))) * prime
	h = (h ^ uint32(byte(k.DstPort>>8))) * prime
	h = (h ^ uint32(byte(k.DstPort))) * prime
	return h
}

// entry holds every route installed for one prefix, keyed by source.
type entry struct {
	bySource map[Source][]NextHop
}

// best returns the next hops of the lowest-distance source present.
//
//f2tree:hotpath
func (e *entry) best() []NextHop {
	var (
		bestSrc Source
		hops    []NextHop
	)
	//f2tree:unordered minimum over source keys; commutative
	for src, nh := range e.bySource {
		if len(nh) == 0 {
			continue
		}
		if hops == nil || src < bestSrc {
			bestSrc, hops = src, nh
		}
	}
	return hops
}

// cacheEntry is one memoized lookup; it is live only while its epoch
// matches the table's.
type cacheEntry struct {
	res   Result
	epoch uint64
}

// Table is a forwarding table. The zero value is not usable; call New.
// Each table belongs to one switch on one simulation shard; sharing one
// across shards (or caching it globally) breaks the sharded core's
// ownership model.
//
//f2tree:shardlocal
type Table struct {
	// byLen[b] maps masked network addresses of length b to entries.
	//f2tree:epochguarded
	byLen [33]map[netaddr.Addr]*entry
	// lens lists the prefix lengths with at least one installed route, in
	// descending order — the only lengths Lookup visits. A production table
	// holds ~3 distinct lengths (/32, /24, /16, /15), not 33.
	//f2tree:epochguarded
	lens []int
	//f2tree:epochguarded
	count int

	// epoch versions every state a Lookup result depends on. Route
	// mutations bump it internally; link-usability transitions must bump
	// it via InvalidateFlowCache (the usable predicate is external state).
	//f2tree:epoch
	epoch    uint64
	cache    map[FlowKey]cacheEntry
	cacheCap int
}

// New returns an empty table.
func New() *Table {
	return &Table{}
}

// EnableFlowCache turns on flow→Result memoization for Lookup. capEntries
// bounds the map (≤ 0 means a default of 4096); at capacity the cache is
// reset rather than evicted, keeping behaviour deterministic.
//
// Correctness contract: the cache is invalidated by epoch comparison, and
// the epoch advances automatically on every Add/Remove/ReplaceSource. The
// caller owns the other half — whenever the state behind a Lookup's usable
// predicate changes (a port's believed state flips), it must call
// InvalidateFlowCache, or cached Results may bypass the F²Tree fallback.
func (t *Table) EnableFlowCache(capEntries int) {
	if capEntries <= 0 {
		capEntries = 4096
	}
	t.cacheCap = capEntries
	t.cache = make(map[FlowKey]cacheEntry, 64)
}

// InvalidateFlowCache discards every memoized lookup by advancing the
// table's epoch. Call it on any link-usability transition visible to the
// usable predicates passed to Lookup.
func (t *Table) InvalidateFlowCache() { t.epoch++ }

// notePopulated records that length b just gained its first route,
// inserting it into the descending lens list.
//
//f2tree:noepoch internal helper; every caller (Add/ReplaceSource) bumps the epoch itself
func (t *Table) notePopulated(b int) {
	i := sort.Search(len(t.lens), func(i int) bool { return t.lens[i] <= b })
	if i < len(t.lens) && t.lens[i] == b {
		return
	}
	t.lens = append(t.lens, 0)
	copy(t.lens[i+1:], t.lens[i:])
	t.lens[i] = b
}

// noteEmptied records that length b lost its last route.
//
//f2tree:noepoch internal helper; every caller (Remove/ReplaceSource) bumps the epoch itself
func (t *Table) noteEmptied(b int) {
	i := sort.Search(len(t.lens), func(i int) bool { return t.lens[i] <= b })
	if i < len(t.lens) && t.lens[i] == b {
		t.lens = append(t.lens[:i], t.lens[i+1:]...)
	}
}

// Add installs (or replaces) the route for (prefix, source). Next hops are
// kept sorted by port for deterministic ECMP. An empty next-hop set is an
// error.
func (t *Table) Add(r Route) error {
	if len(r.NextHops) == 0 {
		return fmt.Errorf("fib: route %v has no next hops", r.Prefix)
	}
	hops := make([]NextHop, len(r.NextHops))
	copy(hops, r.NextHops)
	sort.Slice(hops, func(i, j int) bool { return hops[i].Port < hops[j].Port })
	b := r.Prefix.Bits()
	if t.byLen[b] == nil {
		t.byLen[b] = make(map[netaddr.Addr]*entry)
	}
	if len(t.byLen[b]) == 0 {
		t.notePopulated(b)
	}
	e := t.byLen[b][r.Prefix.Addr()]
	if e == nil {
		e = &entry{bySource: make(map[Source][]NextHop, 2)}
		t.byLen[b][r.Prefix.Addr()] = e
	}
	if _, existed := e.bySource[r.Source]; !existed {
		t.count++
	}
	e.bySource[r.Source] = hops
	t.epoch++
	return nil
}

// Remove deletes the route for (prefix, source). Removing a route that is
// not present is a no-op.
func (t *Table) Remove(p netaddr.Prefix, src Source) {
	b := p.Bits()
	m := t.byLen[b]
	if m == nil {
		return
	}
	e := m[p.Addr()]
	if e == nil {
		return
	}
	if _, ok := e.bySource[src]; !ok {
		return
	}
	delete(e.bySource, src)
	t.count--
	if len(e.bySource) == 0 {
		delete(m, p.Addr())
		if len(m) == 0 {
			t.noteEmptied(b)
		}
	}
	t.epoch++
}

// ReplaceSource atomically replaces every route of the given source with
// the provided set. This models a routing protocol installing the result of
// a fresh computation.
func (t *Table) ReplaceSource(src Source, routes []Route) error {
	for b := 0; b <= 32; b++ {
		//f2tree:unordered per-entry delete and commutative count decrement
		for addr, e := range t.byLen[b] {
			if _, ok := e.bySource[src]; ok {
				delete(e.bySource, src)
				t.count--
				if len(e.bySource) == 0 {
					delete(t.byLen[b], addr)
					if len(t.byLen[b]) == 0 {
						t.noteEmptied(b)
					}
				}
			}
		}
	}
	t.epoch++
	for _, r := range routes {
		r.Source = src
		if err := t.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of installed (prefix, source) routes.
func (t *Table) Len() int { return t.count }

// Clear wipes every installed route of every source — the FIB of a switch
// that crashed and restarted with empty forwarding state. The flow cache
// (if enabled) stays enabled and is invalidated by the epoch bump.
func (t *Table) Clear() {
	for b := range t.byLen {
		t.byLen[b] = nil
	}
	t.lens = t.lens[:0]
	t.count = 0
	t.epoch++
}

// Result is a successful lookup.
type Result struct {
	Prefix  netaddr.Prefix
	NextHop NextHop
}

// Lookup finds the longest prefix containing dst whose best route has at
// least one next hop for which usable returns true, then picks one by
// hashing the flow key across the usable set. A nil usable accepts all.
//
// The shorter-prefix fallback happens here: if every next hop of the /24 is
// unusable, the /16 is consulted, then the /15 — exactly the behaviour the
// paper configures with its two static backup routes.
//
//f2tree:hotpath
func (t *Table) Lookup(dst netaddr.Addr, flow FlowKey, usable func(NextHop) bool) (Result, bool) {
	// The cache memoizes only the canonical forwarding query (dst is the
	// flow's destination); diagnostic lookups with a detached dst bypass it.
	cached := t.cache != nil && dst == flow.Dst
	if cached {
		if e, ok := t.cache[flow]; ok && e.epoch == t.epoch {
			return e.res, true
		}
	}
	var scratch [16]NextHop
	// Only lengths that hold routes are visited — typically /32, /24, /16,
	// /15 — and the mask is applied directly: no per-length error path.
	for _, b := range t.lens {
		e := t.byLen[b][dst.Masked(b)]
		if e == nil {
			continue
		}
		hops := e.best()
		if len(hops) == 0 {
			continue
		}
		live := scratch[:0]
		for _, nh := range hops {
			if usable == nil || usable(nh) {
				live = append(live, nh)
			}
		}
		if len(live) == 0 {
			continue // fall through to a shorter prefix
		}
		pick := live[int(flow.Hash()%uint32(len(live)))]
		res := Result{Prefix: netaddr.PrefixOf(dst, b), NextHop: pick}
		if cached {
			if len(t.cache) >= t.cacheCap {
				t.cache = make(map[FlowKey]cacheEntry, 64)
			}
			t.cache[flow] = cacheEntry{res: res, epoch: t.epoch}
		}
		return res, true
	}
	return Result{}, false
}

// Routes returns every installed route, sorted by (bits desc, addr, source)
// for stable diagnostics output.
func (t *Table) Routes() []Route {
	out := make([]Route, 0, t.count)
	for b := 32; b >= 0; b-- {
		m := t.byLen[b]
		if len(m) == 0 {
			continue
		}
		for _, a := range detsort.Keys(m) {
			e := m[a]
			srcs := detsort.Keys(e.bySource)
			p, err := netaddr.PrefixFrom(a, b)
			if err != nil {
				continue
			}
			for _, s := range srcs {
				hops := make([]NextHop, len(e.bySource[s]))
				copy(hops, e.bySource[s])
				out = append(out, Route{Prefix: p, Source: s, NextHops: hops})
			}
		}
	}
	return out
}

// String renders the table like a router's "show ip route".
func (t *Table) String() string {
	var b strings.Builder
	for _, r := range t.Routes() {
		fmt.Fprintf(&b, "%-20v %-9s", r.Prefix, r.Source)
		for i, nh := range r.NextHops {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %v", nh)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
