package fib

import (
	"testing"

	"repro/internal/netaddr"
)

// cacheFixture installs the paper's route shape: an OSPF /24 with two ECMP
// next hops (ports 0, 1) over a static /16 backup (port 10).
func cacheFixture(t *testing.T) (*Table, netaddr.Addr, FlowKey) {
	t.Helper()
	tbl := New()
	if err := tbl.Add(Route{Prefix: netaddr.MustParsePrefix("10.11.5.0/24"), Source: OSPF,
		NextHops: []NextHop{{Port: 0}, {Port: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(Route{Prefix: netaddr.MustParsePrefix("10.11.0.0/16"), Source: Static,
		NextHops: []NextHop{{Port: 10}}}); err != nil {
		t.Fatal(err)
	}
	dst := netaddr.MustParseAddr("10.11.5.9")
	flow := FlowKey{Src: netaddr.MustParseAddr("10.11.0.2"), Dst: dst,
		Proto: 17, SrcPort: 40000, DstPort: 9}
	return tbl, dst, flow
}

// TestFlowCacheFallbackOnInvalidate replays the paper's failure sequence
// against the cache: the /24's next hops die, the caller invalidates, and
// the next lookup must fall back to the /16 backup route — then recover to
// the /24 when the hops heal.
func TestFlowCacheFallbackOnInvalidate(t *testing.T) {
	tbl, dst, flow := cacheFixture(t)
	tbl.EnableFlowCache(0)
	dead := map[int]bool{}
	usable := func(nh NextHop) bool { return !dead[nh.Port] }

	res, ok := tbl.Lookup(dst, flow, usable)
	if !ok || res.Prefix.Bits() != 24 {
		t.Fatalf("initial lookup = %+v, %v; want /24 hit", res, ok)
	}
	// Second lookup is served from cache (same answer).
	res2, ok := tbl.Lookup(dst, flow, usable)
	if !ok || res2 != res {
		t.Fatalf("cached lookup = %+v, want %+v", res2, res)
	}

	// Both /24 next hops die; the caller fulfills its contract.
	dead[0], dead[1] = true, true
	tbl.InvalidateFlowCache()
	res, ok = tbl.Lookup(dst, flow, usable)
	if !ok || res.Prefix.Bits() != 16 || res.NextHop.Port != 10 {
		t.Fatalf("post-failure lookup = %+v, %v; want /16 backup via port 10", res, ok)
	}

	// Link heals: back to the /24.
	dead[0], dead[1] = false, false
	tbl.InvalidateFlowCache()
	res, ok = tbl.Lookup(dst, flow, usable)
	if !ok || res.Prefix.Bits() != 24 {
		t.Fatalf("post-heal lookup = %+v, %v; want /24 again", res, ok)
	}
}

// TestFlowCacheStaleWithoutInvalidate pins the caller contract from the
// other side: if the usable predicate's state changes and nobody calls
// InvalidateFlowCache, the cache keeps serving the old result. This is the
// sharp edge network.Network must (and does) handle on every believed
// port-state transition.
func TestFlowCacheStaleWithoutInvalidate(t *testing.T) {
	tbl, dst, flow := cacheFixture(t)
	tbl.EnableFlowCache(0)
	dead := map[int]bool{}
	usable := func(nh NextHop) bool { return !dead[nh.Port] }
	if _, ok := tbl.Lookup(dst, flow, usable); !ok {
		t.Fatal("warm-up lookup missed")
	}
	dead[0], dead[1] = true, true
	res, ok := tbl.Lookup(dst, flow, usable)
	if !ok || res.Prefix.Bits() != 24 {
		t.Fatalf("expected the documented stale /24 answer, got %+v, %v", res, ok)
	}
}

// TestFlowCacheRouteMutationInvalidates checks the automatic half of the
// epoch rule: Add/Remove/ReplaceSource must invalidate without any call
// from the owner.
func TestFlowCacheRouteMutationInvalidates(t *testing.T) {
	tbl, dst, flow := cacheFixture(t)
	tbl.EnableFlowCache(0)
	if res, ok := tbl.Lookup(dst, flow, nil); !ok || res.Prefix.Bits() != 24 {
		t.Fatalf("warm-up = %+v, %v", res, ok)
	}
	tbl.Remove(netaddr.MustParsePrefix("10.11.5.0/24"), OSPF)
	res, ok := tbl.Lookup(dst, flow, nil)
	if !ok || res.Prefix.Bits() != 16 {
		t.Fatalf("after Remove = %+v, %v; want /16", res, ok)
	}
	if err := tbl.ReplaceSource(OSPF, []Route{{Prefix: netaddr.MustParsePrefix("10.11.5.0/24"),
		NextHops: []NextHop{{Port: 2}}}}); err != nil {
		t.Fatal(err)
	}
	res, ok = tbl.Lookup(dst, flow, nil)
	if !ok || res.Prefix.Bits() != 24 || res.NextHop.Port != 2 {
		t.Fatalf("after ReplaceSource = %+v, %v; want /24 via port 2", res, ok)
	}
}

// TestFlowCacheCapacityReset fills the cache beyond capacity and checks
// lookups stay correct through the reset.
func TestFlowCacheCapacityReset(t *testing.T) {
	tbl, dst, flow := cacheFixture(t)
	tbl.EnableFlowCache(8)
	for i := 0; i < 100; i++ {
		f := flow
		f.SrcPort = uint16(40000 + i)
		res, ok := tbl.Lookup(dst, f, nil)
		if !ok || res.Prefix.Bits() != 24 {
			t.Fatalf("lookup %d = %+v, %v", i, res, ok)
		}
	}
	if len(tbl.cache) > 8 {
		t.Fatalf("cache grew to %d entries past its cap of 8", len(tbl.cache))
	}
}

// TestLookupMatchesUncached cross-checks cached and uncached tables over a
// spread of destinations and failure states.
func TestLookupMatchesUncached(t *testing.T) {
	plain, _, _ := cacheFixture(t)
	cachedTbl, _, _ := cacheFixture(t)
	cachedTbl.EnableFlowCache(16)
	for _, deadPorts := range []map[int]bool{nil, {0: true}, {0: true, 1: true}} {
		usable := func(nh NextHop) bool { return deadPorts == nil || !deadPorts[nh.Port] }
		plain.InvalidateFlowCache() // harmless on an uncached table
		cachedTbl.InvalidateFlowCache()
		for i := 0; i < 16; i++ {
			dst := netaddr.AddrFrom4(10, 11, byte(i%8), byte(i))
			f := FlowKey{Src: 1, Dst: dst, Proto: 17, SrcPort: uint16(i), DstPort: 9}
			r1, ok1 := plain.Lookup(dst, f, usable)
			// Look up twice so the second hit comes from the cache.
			cachedTbl.Lookup(dst, f, usable)
			r2, ok2 := cachedTbl.Lookup(dst, f, usable)
			if ok1 != ok2 || r1 != r2 {
				t.Fatalf("dst %v dead=%v: plain=(%+v,%v) cached=(%+v,%v)",
					dst, deadPorts, r1, ok1, r2, ok2)
			}
		}
	}
}
