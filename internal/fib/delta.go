package fib

import "repro/internal/netaddr"

// Delta is the difference between two route sets of one source: the routes
// to add or replace and the prefixes to withdraw. It is what the
// incremental control plane installs instead of a full ReplaceSource —
// after a single-link event only a handful of prefixes change next hops,
// while a fat-tree FIB holds one route per ToR subnet.
type Delta struct {
	// Upserts are routes whose next-hop set changed or that are new;
	// applying one overwrites the (prefix, source) slot like Add.
	Upserts []Route
	// Removes are prefixes the source no longer advertises.
	Removes []netaddr.Prefix
}

// Empty reports whether applying the delta would change no routes. The
// install event still bumps the table epoch (see ApplySourceDelta): an
// empty delta means "same routes", not "no install happened".
func (d Delta) Empty() bool { return len(d.Upserts) == 0 && len(d.Removes) == 0 }

// hopsEqual compares two next-hop lists element-wise. Both sides come out
// of the same emitter (HopLess-sorted for OSPF routes, port-sorted inside
// the table), so element-wise equality is set equality.
func hopsEqual(a, b []NextHop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiffRoutes computes the delta that transforms the route set old into the
// set next. Both inputs are treated as sets keyed by prefix (the last
// occurrence of a duplicated prefix wins, matching what installing the
// list route-by-route would leave behind). The result is deterministic:
// upserts keep next's order, removes keep old's order.
func DiffRoutes(old, next []Route) Delta {
	prev := make(map[netaddr.Prefix][]NextHop, len(old))
	for _, r := range old {
		prev[r.Prefix] = r.NextHops
	}
	last := make(map[netaddr.Prefix]int, len(next))
	for i, r := range next {
		last[r.Prefix] = i
	}
	var d Delta
	seen := make(map[netaddr.Prefix]bool, len(next))
	for i, r := range next {
		if last[r.Prefix] != i {
			continue // a later occurrence of the prefix wins, as in Add
		}
		seen[r.Prefix] = true
		if hops, ok := prev[r.Prefix]; ok && hopsEqual(hops, r.NextHops) {
			continue
		}
		d.Upserts = append(d.Upserts, r)
	}
	for _, r := range old {
		if !seen[r.Prefix] {
			d.Removes = append(d.Removes, r.Prefix)
			seen[r.Prefix] = true // a prefix withdrawn once stays withdrawn
		}
	}
	return d
}

// ApplySourceDelta applies a delta for one source: withdrawals first, then
// upserts. When the delta was produced by DiffRoutes(installed, next) it
// leaves the table in exactly the state ReplaceSource(src, next) would —
// the equivalence the incremental control plane is gated on.
//
// The epoch is bumped at least once even for an empty delta: an install
// event invalidates the flow cache whether or not any route changed,
// matching ReplaceSource's unconditional bump.
func (t *Table) ApplySourceDelta(src Source, d Delta) error {
	t.epoch++
	for _, p := range d.Removes {
		t.Remove(p, src)
	}
	for _, r := range d.Upserts {
		r.Source = src
		if err := t.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// SourceRoutes returns every installed route of one source in Routes()
// order (bits desc, addr). The incremental installer's self-check compares
// this against the control plane's freshly computed route list.
func (t *Table) SourceRoutes(src Source) []Route {
	all := t.Routes()
	out := make([]Route, 0, len(all))
	for _, r := range all {
		if r.Source == src {
			out = append(out, r)
		}
	}
	return out
}
