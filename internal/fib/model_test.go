package fib

import (
	"math/rand"
	"testing"

	"repro/internal/netaddr"
)

// refTable is a brute-force reference implementation: a flat list of
// routes, scanned linearly on lookup.
type refTable struct {
	routes []Route
}

func (r *refTable) add(rt Route) {
	for i := range r.routes {
		if r.routes[i].Prefix == rt.Prefix && r.routes[i].Source == rt.Source {
			r.routes[i] = rt
			return
		}
	}
	r.routes = append(r.routes, rt)
}

func (r *refTable) remove(p netaddr.Prefix, src Source) {
	out := r.routes[:0]
	for _, rt := range r.routes {
		if rt.Prefix == p && rt.Source == src {
			continue
		}
		out = append(out, rt)
	}
	r.routes = out
}

func (r *refTable) replaceSource(src Source, rs []Route) {
	out := r.routes[:0]
	for _, rt := range r.routes {
		if rt.Source != src {
			out = append(out, rt)
		}
	}
	r.routes = out
	for _, rt := range rs {
		rt.Source = src
		r.add(rt)
	}
}

// lookup mirrors Table.Lookup semantics: longest prefix whose best-source
// route has a usable hop.
func (r *refTable) lookup(dst netaddr.Addr, usable func(NextHop) bool) (netaddr.Prefix, bool) {
	for bits := 32; bits >= 0; bits-- {
		p, err := netaddr.PrefixFrom(dst, bits)
		if err != nil {
			continue
		}
		var bestRt *Route
		for i := range r.routes {
			rt := &r.routes[i]
			if rt.Prefix != p {
				continue
			}
			if bestRt == nil || rt.Source < bestRt.Source {
				bestRt = rt
			}
		}
		if bestRt == nil {
			continue
		}
		for _, nh := range bestRt.NextHops {
			if usable == nil || usable(nh) {
				return p, true
			}
		}
	}
	return netaddr.Prefix{}, false
}

// TestTableAgainstReferenceModel drives random operation sequences through
// both implementations and compares every lookup.
func TestTableAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// A small universe so prefixes collide often.
	addrs := []netaddr.Addr{
		netaddr.MustParseAddr("10.11.0.0"),
		netaddr.MustParseAddr("10.11.1.0"),
		netaddr.MustParseAddr("10.11.0.128"),
		netaddr.MustParseAddr("10.10.0.0"),
		netaddr.MustParseAddr("10.12.3.0"),
	}
	bitsChoices := []int{8, 15, 16, 24, 25, 32}
	sources := []Source{Connected, Static, OSPF, BGP}

	randomPrefix := func() netaddr.Prefix {
		p, err := netaddr.PrefixFrom(addrs[rng.Intn(len(addrs))], bitsChoices[rng.Intn(len(bitsChoices))])
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	randomHops := func() []NextHop {
		n := 1 + rng.Intn(4)
		hops := make([]NextHop, 0, n)
		seen := map[int]bool{}
		for len(hops) < n {
			port := rng.Intn(8)
			if seen[port] {
				continue
			}
			seen[port] = true
			hops = append(hops, NextHop{Port: port})
		}
		return hops
	}

	for trial := 0; trial < 50; trial++ {
		tbl := New()
		ref := &refTable{}
		for op := 0; op < 200; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // add
				rt := Route{Prefix: randomPrefix(), Source: sources[rng.Intn(len(sources))], NextHops: randomHops()}
				if err := tbl.Add(rt); err != nil {
					t.Fatal(err)
				}
				ref.add(rt)
			case 5, 6: // remove
				p, src := randomPrefix(), sources[rng.Intn(len(sources))]
				tbl.Remove(p, src)
				ref.remove(p, src)
			case 7: // replace a source wholesale
				src := sources[rng.Intn(len(sources))]
				n := rng.Intn(4)
				rs := make([]Route, 0, n)
				for j := 0; j < n; j++ {
					rs = append(rs, Route{Prefix: randomPrefix(), NextHops: randomHops()})
				}
				if err := tbl.ReplaceSource(src, rs); err != nil {
					t.Fatal(err)
				}
				ref.replaceSource(src, rs)
			default: // lookups with a random usability mask
				deadPort := rng.Intn(10) // ports ≥ 8 never exist → all usable
				usable := func(nh NextHop) bool { return nh.Port != deadPort }
				for _, base := range addrs {
					dst := base + netaddr.Addr(rng.Intn(256))
					got, okGot := tbl.Lookup(dst, FlowKey{Dst: dst, SrcPort: uint16(op)}, usable)
					wantPrefix, okWant := ref.lookup(dst, usable)
					if okGot != okWant {
						t.Fatalf("trial %d op %d dst %v: ok=%v want %v\ntable:\n%s",
							trial, op, dst, okGot, okWant, tbl.String())
					}
					if okGot && got.Prefix != wantPrefix {
						t.Fatalf("trial %d op %d dst %v: prefix %v want %v",
							trial, op, dst, got.Prefix, wantPrefix)
					}
					if okGot && !usable(got.NextHop) {
						t.Fatalf("trial %d op %d: returned unusable hop", trial, op)
					}
				}
			}
		}
		if tbl.Len() != len(ref.routes) {
			t.Fatalf("trial %d: Len=%d ref=%d", trial, tbl.Len(), len(ref.routes))
		}
	}
}
