package netaddr

import "testing"

// FuzzParseAddr checks that the parser never panics and that every
// accepted address round-trips through String.
func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{"10.11.0.1", "0.0.0.0", "255.255.255.255", "1.2.3", "a.b.c.d", "10.011.0.1", "-1.0.0.0", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		back, err := ParseAddr(a.String())
		if err != nil {
			t.Fatalf("String %q of parsed %q does not re-parse: %v", a.String(), s, err)
		}
		if back != a {
			t.Fatalf("round trip %q → %v → %v", s, a, back)
		}
	})
}

// FuzzParsePrefix checks CIDR parsing invariants: accepted prefixes have
// masked addresses, contain their own network address, and round-trip.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{"10.11.0.0/16", "0.0.0.0/0", "255.255.255.255/32", "10.0.0.0/33", "10.0.0.0", "/8", "10.0.0.1/24"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if !p.Contains(p.Addr()) {
			t.Fatalf("%v does not contain its own network address", p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip %q → %v → %v (%v)", s, p, back, err)
		}
		if p.Bits() > 0 {
			cov, err := p.Covering()
			if err != nil {
				t.Fatalf("covering of %v: %v", p, err)
			}
			if !cov.ContainsPrefix(p) {
				t.Fatalf("covering %v does not contain %v", cov, p)
			}
		}
	})
}
