// Package netaddr implements compact IPv4 addresses and prefixes for the
// simulator's forwarding plane. Addresses are uint32 values; prefixes carry
// a mask length. The representation is deliberately minimal so longest-
// prefix-match lookups stay allocation-free on the forwarding hot path.
package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 builds an address from its four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation ("10.11.0.1").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: %q is not dotted-quad", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: %q is not dotted-quad", s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// MustParseAddr is ParseAddr that panics on error; for constants in tests
// and examples only.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String formats a in dotted-quad notation.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	var b strings.Builder
	b.Grow(15)
	b.WriteString(strconv.Itoa(int(o1)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o2)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o3)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o4)))
	return b.String()
}

// IsZero reports whether a is the zero address 0.0.0.0.
func (a Addr) IsZero() bool { return a == 0 }

// Prefix is an IPv4 CIDR prefix. The address is stored already masked.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom returns the prefix addr/bits with the host bits cleared.
// bits outside [0,32] is an error.
func PrefixFrom(addr Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix length %d", bits)
	}
	return Prefix{addr: addr & maskFor(bits), bits: uint8(bits)}, nil
}

// ParsePrefix parses CIDR notation ("10.11.0.0/16"). Host bits are cleared.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: %q is not CIDR", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("netaddr: %q is not CIDR", s)
	}
	return PrefixFrom(addr, bits)
}

// MustParsePrefix is ParsePrefix that panics on error; for constants in
// tests and examples only.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// HostPrefix returns the /32 prefix covering exactly a.
func HostPrefix(a Addr) Prefix { return Prefix{addr: a, bits: 32} }

// Masked returns a with the host bits below bits cleared; bits is clamped
// to [0,32]. This is the error-free masking primitive for lookup hot paths
// whose bit length is known valid by construction.
func (a Addr) Masked(bits int) Addr { return a & maskFor(bits) }

// PrefixOf returns the prefix a/bits with host bits cleared, clamping bits
// to [0,32]. Unlike PrefixFrom it cannot fail, so per-lookup error checks
// stay out of the forwarding path.
func PrefixOf(a Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	} else if bits > 32 {
		bits = 32
	}
	return Prefix{addr: a & maskFor(bits), bits: uint8(bits)}
}

func maskFor(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ^Addr(0)
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// Addr returns the (masked) network address.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the mask length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether a is inside p.
func (p Prefix) Contains(a Addr) bool { return a&maskFor(int(p.bits)) == p.addr }

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// ContainsPrefix reports whether q is entirely inside p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return p.bits <= q.bits && p.Contains(q.addr)
}

// Covering returns the prefix one bit shorter that contains p (the paper's
// "shorter prefix covering all hosts", e.g. 10.11.0.0/16 → 10.10.0.0/15).
func (p Prefix) Covering() (Prefix, error) {
	if p.bits == 0 {
		return Prefix{}, fmt.Errorf("netaddr: %v has no covering prefix", p)
	}
	return PrefixFrom(p.addr, int(p.bits)-1)
}

// Nth returns the n-th address within p (0 = network address). n beyond the
// prefix size is an error.
func (p Prefix) Nth(n uint32) (Addr, error) {
	if int(p.bits) < 32 {
		size := uint64(1) << (32 - uint(p.bits))
		if uint64(n) >= size {
			return 0, fmt.Errorf("netaddr: offset %d outside %v", n, p)
		}
	} else if n != 0 {
		return 0, fmt.Errorf("netaddr: offset %d outside %v", n, p)
	}
	return p.addr + Addr(n), nil
}

// String formats p in CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// IsZero reports whether p is the zero Prefix (0.0.0.0/0 is NOT zero-valued
// semantically, but the zero value has bits 0 and addr 0, so they coincide;
// use with care, the simulator never routes 0.0.0.0/0 except host defaults).
func (p Prefix) IsZero() bool { return p.addr == 0 && p.bits == 0 }
