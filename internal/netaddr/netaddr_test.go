package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddrRoundTrip(t *testing.T) {
	tests := []struct {
		in   string
		ok   bool
		want Addr
	}{
		{"10.11.0.1", true, AddrFrom4(10, 11, 0, 1)},
		{"0.0.0.0", true, 0},
		{"255.255.255.255", true, Addr(0xFFFFFFFF)},
		{"10.11.0", false, 0},
		{"10.11.0.1.2", false, 0},
		{"10.11.0.256", false, 0},
		{"10.11.0.-1", false, 0},
		{"10.011.0.1", false, 0}, // leading zero
		{"a.b.c.d", false, 0},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if tt.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
		}
		if err == nil && got.String() != tt.in {
			t.Errorf("String() = %q, want %q", got.String(), tt.in)
		}
	}
}

func TestPropertyAddrStringParseRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixMasksHostBits(t *testing.T) {
	p, err := PrefixFrom(MustParseAddr("10.11.3.7"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr() != MustParseAddr("10.11.0.0") {
		t.Fatalf("masked addr = %v", p.Addr())
	}
	if p.String() != "10.11.0.0/16" {
		t.Fatalf("String = %q", p.String())
	}
	if _, err := PrefixFrom(0, 33); err == nil {
		t.Fatal("bits 33 accepted")
	}
	if _, err := PrefixFrom(0, -1); err == nil {
		t.Fatal("bits -1 accepted")
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.11.0.0/16")
	if p.Bits() != 16 || p.Addr() != MustParseAddr("10.11.0.0") {
		t.Fatalf("parsed %v", p)
	}
	for _, bad := range []string{"10.11.0.0", "10.11.0.0/x", "10.11.0/16", "10.11.0.0/40"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", bad)
		}
	}
}

func TestContains(t *testing.T) {
	p := MustParsePrefix("10.11.0.0/16")
	if !p.Contains(MustParseAddr("10.11.200.3")) {
		t.Fatal("should contain 10.11.200.3")
	}
	if p.Contains(MustParseAddr("10.12.0.1")) {
		t.Fatal("should not contain 10.12.0.1")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("255.255.255.255")) {
		t.Fatal("/0 should contain everything")
	}
	host := HostPrefix(MustParseAddr("10.0.0.1"))
	if !host.Contains(MustParseAddr("10.0.0.1")) || host.Contains(MustParseAddr("10.0.0.2")) {
		t.Fatal("host prefix wrong")
	}
}

func TestCovering(t *testing.T) {
	// The paper's example: DCN prefix 10.11.0.0/16, covering 10.10.0.0/15.
	dcn := MustParsePrefix("10.11.0.0/16")
	cov, err := dcn.Covering()
	if err != nil {
		t.Fatal(err)
	}
	if cov.String() != "10.10.0.0/15" {
		t.Fatalf("covering = %v, want 10.10.0.0/15", cov)
	}
	if !cov.ContainsPrefix(dcn) {
		t.Fatal("covering must contain the DCN prefix")
	}
	if _, err := MustParsePrefix("0.0.0.0/0").Covering(); err == nil {
		t.Fatal("/0 has no covering prefix")
	}
}

func TestOverlapsAndContainsPrefix(t *testing.T) {
	a := MustParsePrefix("10.11.0.0/16")
	b := MustParsePrefix("10.11.4.0/24")
	c := MustParsePrefix("10.12.0.0/16")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("a and c are disjoint")
	}
	if !a.ContainsPrefix(b) || b.ContainsPrefix(a) {
		t.Fatal("ContainsPrefix asymmetric check failed")
	}
}

func TestNth(t *testing.T) {
	p := MustParsePrefix("10.11.4.0/24")
	got, err := p.Nth(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != MustParseAddr("10.11.4.1") {
		t.Fatalf("Nth(1) = %v", got)
	}
	if _, err := p.Nth(256); err == nil {
		t.Fatal("Nth(256) of a /24 accepted")
	}
	h := HostPrefix(MustParseAddr("1.2.3.4"))
	if a, err := h.Nth(0); err != nil || a != MustParseAddr("1.2.3.4") {
		t.Fatalf("host Nth(0) = %v, %v", a, err)
	}
	if _, err := h.Nth(1); err == nil {
		t.Fatal("host Nth(1) accepted")
	}
}

func TestPropertyContainmentTransitive(t *testing.T) {
	// If p contains prefix q and q contains addr a, then p contains a.
	f := func(base uint32, pb, qb uint8, off uint32) bool {
		pbits := int(pb % 33)
		qbits := pbits + int(qb%uint8(33-pbits))
		p, err := PrefixFrom(Addr(base), pbits)
		if err != nil {
			return false
		}
		q, err := PrefixFrom(Addr(base), qbits)
		if err != nil {
			return false
		}
		if !p.ContainsPrefix(q) {
			return false
		}
		var size uint32
		if qbits == 32 {
			size = 1
		} else if qbits == 0 {
			size = 0 // avoid overflow; off%0 invalid, use raw off
		} else {
			size = uint32(1) << (32 - uint(qbits))
		}
		var a Addr
		if size == 0 {
			a = Addr(off)
		} else {
			addr, err := q.Nth(off % size)
			if err != nil {
				return false
			}
			a = addr
		}
		return q.Contains(a) && p.Contains(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	if !Addr(0).IsZero() || Addr(1).IsZero() {
		t.Fatal("Addr.IsZero wrong")
	}
	var p Prefix
	if !p.IsZero() {
		t.Fatal("zero Prefix not IsZero")
	}
	if MustParsePrefix("10.0.0.0/8").IsZero() {
		t.Fatal("non-zero prefix IsZero")
	}
}
