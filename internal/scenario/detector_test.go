package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestParseDetectorGRRoundTrip encodes a scenario carrying detector and GR
// blocks, parses it back, and requires structural equality — the fields
// must survive a marshal/parse cycle unchanged (and omitempty must keep
// them out of documents that never set them).
func TestParseDetectorGRRoundTrip(t *testing.T) {
	orig := parseOK(t, `{
		"scheme": "f2tree", "ports": 8, "controlPlane": "bgp",
		"detector": {"mode": "bfd", "txIntervalUs": 2000, "multiplier": 2, "echoBudgetUs": 500},
		"gr": {"restartMs": 1500, "longLived": true, "staleMs": 4000},
		"flows": [{"src": "leftmost", "dst": "rightmost"}]
	}`)
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip changed the scenario:\n  orig %+v\n  back %+v", orig, back)
	}
	if orig.Detector.Mode != "bfd" || orig.Detector.TxIntervalUs != 2000 {
		t.Fatalf("detector block mangled: %+v", orig.Detector)
	}
	if orig.GR.RestartMs != 1500 || !orig.GR.LongLived || orig.GR.StaleMs != 4000 {
		t.Fatalf("gr block mangled: %+v", orig.GR)
	}

	// A scenario that never set the blocks must not emit them.
	plain := parseOK(t, `{"scheme":"f2tree","ports":8,
		"flows":[{"src":"leftmost","dst":"rightmost"}]}`)
	blob, err = json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte("detector")) || bytes.Contains(blob, []byte(`"gr"`)) {
		t.Fatalf("omitempty leaked unset blocks: %s", blob)
	}
}

// TestParseRejectsBadDetectorGR exercises the error paths: malformed
// detector specs, malformed GR specs, and GR on a non-BGP control plane.
func TestParseRejectsBadDetectorGR(t *testing.T) {
	cases := map[string]string{
		"unknown detector mode": `{"scheme":"f2tree","ports":8,
			"detector":{"mode":"quantum"},
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		"negative detector delay": `{"scheme":"f2tree","ports":8,
			"detector":{"delayUs":-1},
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		"bfd interval below floor": `{"scheme":"f2tree","ports":8,
			"detector":{"mode":"bfd","txIntervalUs":50},
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		"gr without bgp": `{"scheme":"f2tree","ports":8,
			"gr":{},
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		"gr under ospf": `{"scheme":"f2tree","ports":8,"controlPlane":"ospf",
			"gr":{},
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		"negative gr timer": `{"scheme":"f2tree","ports":8,"controlPlane":"bgp",
			"gr":{"restartMs":-5},
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		"gr staleMs without longLived": `{"scheme":"f2tree","ports":8,"controlPlane":"bgp",
			"gr":{"staleMs":1000},
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
	}
	for name, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Parse accepted %s", name, doc)
		}
	}
	// GR with bgp (any case) is valid.
	parseOK(t, `{"scheme":"f2tree","ports":8,"controlPlane":"BGP","gr":{},
		"flows":[{"src":"leftmost","dst":"rightmost"}]}`)
}

// TestRunHonorsDetectorAndGR runs the same C1 failure twice — once with
// the defaults and once with a slower fixed detector — and requires the
// slower detector to lengthen the outage, proving the block reaches the
// network layer. The GR run just has to execute cleanly end to end.
func TestRunHonorsDetectorAndGR(t *testing.T) {
	base := `{"scheme":"f2tree","ports":8,"seed":1,%s
		"flows":[{"src":"leftmost","dst":"rightmost","intervalUs":1000}],
		"events":[{"atMs":380,"action":"fail-condition","condition":"C1","flow":0}]}`
	slow := parseOK(t, strings.ReplaceAll(base, "%s", `"detector":{"delayUs":120000},`))
	rep, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flows[0].LossMs < 115 || rep.Flows[0].LossMs > 140 {
		t.Fatalf("loss with 120 ms detector = %v ms, want ≈ 120", rep.Flows[0].LossMs)
	}

	gr := parseOK(t, strings.ReplaceAll(base, "%s", `"controlPlane":"bgp","gr":{"restartMs":500},`))
	rep, err = Run(gr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flows[0].Delivered == 0 {
		t.Fatal("GR scenario delivered nothing")
	}
}
