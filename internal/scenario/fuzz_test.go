package scenario

import (
	"strings"
	"testing"
)

// FuzzParse checks the scenario decoder never panics and enforces its
// required fields on arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add(`{"scheme":"f2tree","ports":8,"flows":[{"src":"leftmost","dst":"rightmost"}]}`)
	f.Add(`{"scheme":"fattree","ports":4,"flows":[{"src":"a","dst":"b"}],"events":[{"atMs":1,"action":"fail-switch","node":"x"}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, doc string) {
		sc, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		if sc.Scheme == "" || sc.Ports == 0 || len(sc.Flows) == 0 {
			t.Fatalf("accepted scenario missing required fields: %+v", sc)
		}
	})
}
