package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func parseOK(t *testing.T, doc string) *Scenario {
	t.Helper()
	sc, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestParseRejectsBadDocuments(t *testing.T) {
	for _, doc := range []string{
		``,
		`{}`,
		`{"scheme":"f2tree"}`,           // missing ports
		`{"scheme":"f2tree","ports":8}`, // missing flows
		`{"scheme":"f2tree","ports":8,"flows":[{"src":"leftmost","dst":"rightmost"}],"bogus":1}`,
	} {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("Parse(%q) accepted", doc)
		}
	}
}

func TestParseValidatesReferences(t *testing.T) {
	cases := map[string]string{
		"unknown action": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":1,"action":"explode"}]}`,
		"malformed condition": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":1,"action":"fail-condition","condition":"C99","flow":0}]}`,
		"condition not a label": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":1,"action":"fail-condition","condition":"banana","flow":0}]}`,
		"flow index out of range": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":1,"action":"fail-condition","condition":"C1","flow":7}]}`,
		"negative flow index": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":1,"action":"fail-condition","condition":"C1","flow":-1}]}`,
		"duplicate flows": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"},
			         {"src":"leftmost","dst":"rightmost"}]}`,
		"negative event time": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":-5,"action":"fail-switch","node":"agg-p0-0"}]}`,
		"event past horizon": `{"scheme":"f2tree","ports":8,"horizonMs":500,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":900,"action":"fail-switch","node":"agg-p0-0"}]}`,
		"event past default horizon": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":2500,"action":"fail-switch","node":"agg-p0-0"}]}`,
		"fail-link missing endpoint": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":1,"action":"fail-link","a":"agg-p0-0"}]}`,
		"fail-switch missing node": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost"}],
			"events":[{"atMs":1,"action":"fail-switch"}]}`,
		"flow missing dst": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost"}]}`,
		"negative flow interval": `{"scheme":"f2tree","ports":8,
			"flows":[{"src":"leftmost","dst":"rightmost","intervalUs":-3}]}`,
		"unknown control plane": `{"scheme":"f2tree","ports":8,"controlPlane":"rip",
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		"negative horizon": `{"scheme":"f2tree","ports":8,"horizonMs":-1,
			"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
	}
	for name, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Parse accepted %s", name, doc)
		}
	}
	// Reverse flows are distinct, not duplicates.
	parseOK(t, `{"scheme":"f2tree","ports":8,
		"flows":[{"src":"leftmost","dst":"rightmost"},
		         {"src":"rightmost","dst":"leftmost"}]}`)
}

func TestRunConditionScenario(t *testing.T) {
	sc := parseOK(t, `{
		"scheme": "f2tree", "ports": 8, "seed": 1,
		"flows": [{"src": "leftmost", "dst": "rightmost"}],
		"events": [{"atMs": 380, "action": "fail-condition", "condition": "C1", "flow": 0}]
	}`)
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 1 {
		t.Fatalf("flows = %d", len(rep.Flows))
	}
	f := rep.Flows[0]
	if f.LossMs < 55 || f.LossMs > 80 {
		t.Fatalf("loss = %v ms, want ≈ 60", f.LossMs)
	}
	if f.Sent == 0 || f.Delivered == 0 || f.Delivered >= int(f.Sent) {
		t.Fatalf("counters wrong: %+v", f)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "connectivityLossMs") {
		t.Fatal("report JSON malformed")
	}
}

func TestRunNamedLinkAndSwitchEvents(t *testing.T) {
	sc := parseOK(t, `{
		"scheme": "fattree", "ports": 4, "seed": 1, "horizonMs": 1500,
		"controlPlane": "ospf",
		"flows": [{"src": "host-p0-t0-0", "dst": "host-p3-t1-1"}],
		"events": [
			{"atMs": 300, "action": "fail-switch", "node": "agg-p3-0"},
			{"atMs": 300, "action": "fail-switch", "node": "agg-p3-1"},
			{"atMs": 900, "action": "restore-link", "a": "agg-p3-0", "b": "tor-p3-1"}
		]
	}`)
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flows[0].Delivered == 0 {
		t.Fatal("flow never delivered")
	}
	if rep.Drops == 0 {
		t.Fatal("switch failure should drop packets")
	}
}

func TestRunBGPControlPlane(t *testing.T) {
	sc := parseOK(t, `{
		"scheme": "f2tree", "ports": 8, "controlPlane": "bgp",
		"flows": [{"src": "leftmost", "dst": "rightmost", "intervalUs": 1000}],
		"events": [{"atMs": 380, "action": "fail-condition", "condition": "C1", "flow": 0}]
	}`)
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flows[0].LossMs < 55 || rep.Flows[0].LossMs > 80 {
		t.Fatalf("loss under BGP = %v ms, want ≈ 60", rep.Flows[0].LossMs)
	}
}

func TestRunRejectsBadReferences(t *testing.T) {
	bads := []string{
		`{"scheme":"x","ports":8,"flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		`{"scheme":"f2tree","ports":8,"controlPlane":"rip","flows":[{"src":"leftmost","dst":"rightmost"}]}`,
		`{"scheme":"f2tree","ports":8,"flows":[{"src":"nope","dst":"rightmost"}]}`,
		`{"scheme":"f2tree","ports":8,"flows":[{"src":"leftmost","dst":"rightmost"}],
		  "events":[{"atMs":1,"action":"fail-condition","condition":"C9","flow":0}]}`,
		`{"scheme":"f2tree","ports":8,"flows":[{"src":"leftmost","dst":"rightmost"}],
		  "events":[{"atMs":1,"action":"fail-condition","condition":"C1","flow":5}]}`,
		`{"scheme":"f2tree","ports":8,"flows":[{"src":"leftmost","dst":"rightmost"}],
		  "events":[{"atMs":1,"action":"fail-link","a":"tor-p0-0","b":"tor-p1-0"}]}`,
		`{"scheme":"f2tree","ports":8,"flows":[{"src":"leftmost","dst":"rightmost"}],
		  "events":[{"atMs":1,"action":"explode"}]}`,
	}
	for _, doc := range bads {
		sc, err := Parse(strings.NewReader(doc))
		if err != nil {
			continue // rejected at parse time: also fine
		}
		if _, err := Run(sc); err == nil {
			t.Errorf("Run accepted %q", doc)
		}
	}
}

func TestMultipleFlowsIndependentPorts(t *testing.T) {
	sc := parseOK(t, `{
		"scheme": "fattree", "ports": 4, "horizonMs": 300,
		"flows": [
			{"src": "leftmost", "dst": "rightmost", "intervalUs": 500},
			{"src": "rightmost", "dst": "leftmost", "intervalUs": 500},
			{"src": "host-p1-t0-0", "dst": "host-p2-t1-1", "intervalUs": 500}
		]
	}`)
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 3 {
		t.Fatalf("flows = %d", len(rep.Flows))
	}
	for i, f := range rep.Flows {
		if f.Delivered == 0 {
			t.Fatalf("flow %d delivered nothing", i)
		}
	}
}
