// Package scenario runs user-described experiments: a JSON document picks
// a topology, control plane, probe flows and a timeline of failure events,
// and the runner reports per-flow outage metrics — the cmd/f2tree-sim
// front end for custom what-if studies beyond the paper's own figures.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/exp"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
)

// Scenario is the user-facing experiment description.
type Scenario struct {
	// Scheme and Ports pick the topology (see exp.BuildTopology).
	Scheme string `json:"scheme"`
	Ports  int    `json:"ports"`
	// ControlPlane is "ospf" (default), "bgp" or "centralized".
	ControlPlane string `json:"controlPlane,omitempty"`
	// DisableFastReroute ablates the backup routes.
	DisableFastReroute bool  `json:"disableFastReroute,omitempty"`
	Seed               int64 `json:"seed,omitempty"`
	// HorizonMs ends the run (default 2000).
	HorizonMs int64 `json:"horizonMs,omitempty"`
	// Detector overrides the failure detector (default: fixed delay).
	Detector *detect.Spec `json:"detector,omitempty"`
	// GR enables BGP graceful restart (requires controlPlane "bgp").
	GR *bgp.GRSpec `json:"gr,omitempty"`

	Flows  []Flow  `json:"flows"`
	Events []Event `json:"events"`
}

// Flow is one probe flow. Src/Dst name hosts ("leftmost", "rightmost", or
// a node name like "host-p0-t0-0").
type Flow struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
	// SizeBytes per datagram (default 1448) and IntervalUs between
	// datagrams (default 100).
	SizeBytes  int   `json:"sizeBytes,omitempty"`
	IntervalUs int64 `json:"intervalUs,omitempty"`
}

// Event is one timeline action.
type Event struct {
	AtMs int64 `json:"atMs"`
	// Action: "fail-condition" (Condition + Flow), "fail-link" /
	// "restore-link" (A, B node names), "fail-switch" (Node).
	Action    string `json:"action"`
	Condition string `json:"condition,omitempty"`
	Flow      int    `json:"flow,omitempty"`
	A         string `json:"a,omitempty"`
	B         string `json:"b,omitempty"`
	Node      string `json:"node,omitempty"`
}

// FlowReport is the per-flow outcome.
type FlowReport struct {
	Src              string        `json:"src"`
	Dst              string        `json:"dst"`
	Sent             uint64        `json:"sent"`
	Delivered        int           `json:"delivered"`
	ConnectivityLoss time.Duration `json:"-"`
	LossMs           float64       `json:"connectivityLossMs"`
}

// Report is the scenario outcome.
type Report struct {
	Topology string       `json:"topology"`
	Flows    []FlowReport `json:"flows"`
	Drops    uint64       `json:"drops"`
}

// Parse decodes and validates a scenario document.
func Parse(r io.Reader) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Validate checks the document's structural and referential integrity
// without building the topology: required fields, action and condition
// labels, flow references, event times within the horizon, and duplicate
// flows. Node-name references still resolve at Run time, since they need
// the topology.
func (sc *Scenario) Validate() error {
	if sc.Scheme == "" || sc.Ports == 0 {
		return fmt.Errorf("scenario: scheme and ports are required")
	}
	switch strings.ToLower(sc.ControlPlane) {
	case "", "ospf", "bgp", "centralized":
	default:
		return fmt.Errorf("scenario: unknown control plane %q", sc.ControlPlane)
	}
	if sc.HorizonMs < 0 {
		return fmt.Errorf("scenario: negative horizon %d ms", sc.HorizonMs)
	}
	if sc.Detector != nil {
		if err := sc.Detector.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if sc.GR != nil {
		if !strings.EqualFold(sc.ControlPlane, "bgp") {
			return fmt.Errorf("scenario: gr requires controlPlane \"bgp\"")
		}
		if err := sc.GR.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if len(sc.Flows) == 0 {
		return fmt.Errorf("scenario: at least one flow is required")
	}
	seen := make(map[string]int, len(sc.Flows))
	for i, f := range sc.Flows {
		if f.Src == "" || f.Dst == "" {
			return fmt.Errorf("scenario: flow %d: src and dst are required", i)
		}
		if f.SizeBytes < 0 || f.IntervalUs < 0 {
			return fmt.Errorf("scenario: flow %d: negative size or interval", i)
		}
		key := f.Src + "\x00" + f.Dst
		if j, dup := seen[key]; dup {
			return fmt.Errorf("scenario: flow %d duplicates flow %d (%s → %s)", i, j, f.Src, f.Dst)
		}
		seen[key] = i
	}
	horizon := int64(2000)
	if sc.HorizonMs > 0 {
		horizon = sc.HorizonMs
	}
	for i, ev := range sc.Events {
		if ev.AtMs < 0 {
			return fmt.Errorf("scenario: event %d: negative time %d ms", i, ev.AtMs)
		}
		if ev.AtMs > horizon {
			return fmt.Errorf("scenario: event %d: %d ms is past the %d ms horizon", i, ev.AtMs, horizon)
		}
		switch ev.Action {
		case "fail-condition":
			if _, err := parseCondition(ev.Condition); err != nil {
				return fmt.Errorf("scenario: event %d: %w", i, err)
			}
			if ev.Flow < 0 || ev.Flow >= len(sc.Flows) {
				return fmt.Errorf("scenario: event %d: flow %d out of range [0,%d)", i, ev.Flow, len(sc.Flows))
			}
		case "fail-link", "restore-link":
			if ev.A == "" || ev.B == "" {
				return fmt.Errorf("scenario: event %d: %s needs endpoints a and b", i, ev.Action)
			}
		case "fail-switch":
			if ev.Node == "" {
				return fmt.Errorf("scenario: event %d: fail-switch needs a node", i)
			}
		default:
			return fmt.Errorf("scenario: event %d: unknown action %q", i, ev.Action)
		}
	}
	return nil
}

// Run executes the scenario.
func Run(sc *Scenario) (*Report, error) {
	tp, err := exp.BuildTopology(exp.Scheme(sc.Scheme), sc.Ports)
	if err != nil {
		return nil, err
	}
	cp := core.ControlOSPF
	switch strings.ToLower(sc.ControlPlane) {
	case "", "ospf":
	case "bgp":
		cp = core.ControlBGP
	case "centralized":
		cp = core.ControlCentralized
	default:
		return nil, fmt.Errorf("scenario: unknown control plane %q", sc.ControlPlane)
	}
	seed := sc.Seed
	if seed == 0 {
		seed = 42
	}
	var netCfg network.Config
	if sc.Detector != nil {
		netCfg.Detector = *sc.Detector
	}
	var bgpCfg bgp.Config
	if sc.GR != nil {
		bgpCfg = sc.GR.Apply(bgpCfg)
	}
	lab, err := core.NewLab(core.LabConfig{
		Topology: tp, Seed: seed, ControlPlane: cp,
		DisableFastReroute: sc.DisableFastReroute,
		Net:                netCfg, BGP: bgpCfg,
	})
	if err != nil {
		return nil, err
	}
	horizon := sim.Time(2 * time.Second)
	if sc.HorizonMs > 0 {
		horizon = sim.Time(time.Duration(sc.HorizonMs) * time.Millisecond)
	}

	resolveHost := func(name string) (topo.NodeID, error) {
		switch name {
		case "leftmost":
			return lab.LeftmostHost(), nil
		case "rightmost":
			return lab.RightmostHost(), nil
		default:
			nd := tp.FindNode(name)
			if nd == nil || nd.Kind != topo.Host {
				return topo.None, fmt.Errorf("scenario: %q is not a host", name)
			}
			return nd.ID, nil
		}
	}
	resolveNode := func(name string) (topo.NodeID, error) {
		nd := tp.FindNode(name)
		if nd == nil {
			return topo.None, fmt.Errorf("scenario: unknown node %q", name)
		}
		return nd.ID, nil
	}

	// Wire the flows.
	type flowRun struct {
		src, dst topo.NodeID
		source   *transport.UDPSource
		sink     *transport.UDPSink
	}
	stacks := map[topo.NodeID]*transport.Stack{}
	stackFor := func(h topo.NodeID) (*transport.Stack, error) {
		if st, ok := stacks[h]; ok {
			return st, nil
		}
		st, err := transport.NewStack(lab.Net, h)
		if err != nil {
			return nil, err
		}
		stacks[h] = st
		return st, nil
	}
	runs := make([]*flowRun, 0, len(sc.Flows))
	for i, f := range sc.Flows {
		src, err := resolveHost(f.Src)
		if err != nil {
			return nil, err
		}
		dst, err := resolveHost(f.Dst)
		if err != nil {
			return nil, err
		}
		srcStack, err := stackFor(src)
		if err != nil {
			return nil, err
		}
		dstStack, err := stackFor(dst)
		if err != nil {
			return nil, err
		}
		port := uint16(9 + i)
		sink, err := dstStack.NewUDPSink(port)
		if err != nil {
			return nil, err
		}
		size := f.SizeBytes
		if size == 0 {
			size = 1448
		}
		interval := time.Duration(f.IntervalUs) * time.Microsecond
		if interval == 0 {
			interval = 100 * time.Microsecond
		}
		source := srcStack.StartUDPSource(dstStack.Addr(), port, size, interval)
		runs = append(runs, &flowRun{src: src, dst: dst, source: source, sink: sink})
	}

	// Schedule the timeline.
	var firstFailAt sim.Time
	for _, ev := range sc.Events {
		ev := ev
		at := sim.Time(time.Duration(ev.AtMs) * time.Millisecond)
		if firstFailAt == 0 || at < firstFailAt {
			firstFailAt = at
		}
		var schedErr error
		switch ev.Action {
		case "fail-condition":
			if ev.Flow < 0 || ev.Flow >= len(runs) {
				return nil, fmt.Errorf("scenario: event references flow %d", ev.Flow)
			}
			cond, err := parseCondition(ev.Condition)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			fr := runs[ev.Flow]
			lab.Sim.At(at, func(sim.Time) {
				path, err := lab.Net.PathTrace(fr.src, fr.source.FlowKey())
				if err != nil {
					schedErr = err
					return
				}
				links, err := failure.ConditionLinks(tp, cond, path)
				if err != nil {
					schedErr = err
					return
				}
				for _, id := range links {
					lab.Net.FailLink(id)
				}
			})
		case "fail-link", "restore-link":
			a, err := resolveNode(ev.A)
			if err != nil {
				return nil, err
			}
			b, err := resolveNode(ev.B)
			if err != nil {
				return nil, err
			}
			links := tp.LinksBetween(a, b)
			if len(links) == 0 {
				return nil, fmt.Errorf("scenario: no link %s–%s", ev.A, ev.B)
			}
			up := ev.Action == "restore-link"
			lab.Sim.At(at, func(sim.Time) {
				for _, l := range links {
					lab.Net.SetLinkState(l.ID, up)
				}
			})
		case "fail-switch":
			node, err := resolveNode(ev.Node)
			if err != nil {
				return nil, err
			}
			lab.Sim.At(at, func(sim.Time) {
				for _, id := range failure.SwitchLinks(tp, node) {
					lab.Net.FailLink(id)
				}
			})
		default:
			return nil, fmt.Errorf("scenario: unknown action %q", ev.Action)
		}
		if schedErr != nil {
			return nil, schedErr
		}
	}

	if err := lab.Sim.Run(horizon); err != nil {
		return nil, err
	}

	rep := &Report{Topology: tp.Name, Drops: lab.Net.Stats().TotalDrops()}
	for _, fr := range runs {
		arrivals := make([]sim.Time, 0, len(fr.sink.Arrivals))
		for _, a := range fr.sink.Arrivals {
			arrivals = append(arrivals, a.Arrived)
		}
		loss := time.Duration(0)
		if firstFailAt > 0 {
			loss = metrics.ConnectivityLoss(arrivals, firstFailAt, horizon)
		}
		rep.Flows = append(rep.Flows, FlowReport{
			Src: tp.Node(fr.src).Name, Dst: tp.Node(fr.dst).Name,
			Sent: fr.source.Sent(), Delivered: len(fr.sink.Arrivals),
			ConnectivityLoss: loss, LossMs: float64(loss.Microseconds()) / 1000,
		})
	}
	return rep, nil
}

// parseCondition maps "C1".."C7".
func parseCondition(s string) (failure.Condition, error) {
	for _, c := range failure.AllConditions() {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown condition %q", s)
}

// WriteReport renders the report as indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
