package metrics_test

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// ExampleConnectivityLoss extracts the paper's headline metric from an
// arrival trace.
func ExampleConnectivityLoss() {
	var arrivals []sim.Time
	for ms := 1; ms <= 100; ms++ {
		arrivals = append(arrivals, sim.Time(ms)*sim.Millisecond)
	}
	// Outage: nothing arrives between 100 ms and 372 ms.
	for ms := 372; ms <= 400; ms++ {
		arrivals = append(arrivals, sim.Time(ms)*sim.Millisecond)
	}
	loss := metrics.ConnectivityLoss(arrivals, 100*sim.Millisecond, 400*sim.Millisecond)
	fmt.Println(loss)
	// Output:
	// 272ms
}

// ExampleCDF computes a tail fraction like Fig 6(b).
func ExampleCDF() {
	c := metrics.NewCDF([]float64{0.001, 0.002, 0.003, 0.250, 0.900})
	fmt.Printf("fraction above 100ms: %.0f%%\n", c.FractionAbove(0.1)*100)
	// Output:
	// fraction above 100ms: 40%
}

// ExampleBinThroughput buckets deliveries into Fig 2's 20 ms bins.
func ExampleBinThroughput() {
	samples := []metrics.Sample{
		{At: 5 * sim.Millisecond, Bytes: 1000},
		{At: 15 * sim.Millisecond, Bytes: 1000},
		{At: 25 * sim.Millisecond, Bytes: 500},
	}
	bins := metrics.BinThroughput(samples, 0, 40*sim.Millisecond, 20*time.Millisecond)
	for _, b := range bins {
		fmt.Printf("%dms: %d bytes\n", b.Start.Duration().Milliseconds(), b.Bytes)
	}
	// Output:
	// 0ms: 2000 bytes
	// 20ms: 500 bytes
	// 40ms: 0 bytes
}
