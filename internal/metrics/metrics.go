// Package metrics extracts the quantities the paper reports from raw
// packet and flow traces: binned throughput (Fig 2), connectivity-loss
// duration and packet loss (Table III, Fig 4), TCP throughput-collapse
// duration (Table III, Fig 4), end-to-end delay series (Fig 5) and
// completion-time CDFs / deadline-miss ratios (Fig 6).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/sim"
)

// Sample is one delivered unit: arrival time and size.
type Sample struct {
	At    sim.Time
	Bytes int
}

// Bin is one throughput bin.
type Bin struct {
	Start sim.Time
	Bytes int
}

// Mbps returns the bin's average rate given the bin width.
func (b Bin) Mbps(width time.Duration) float64 {
	if width <= 0 {
		return 0
	}
	return float64(b.Bytes*8) / width.Seconds() / 1e6
}

// BinThroughput buckets samples into fixed-width bins spanning [start, end).
// Samples outside the span are ignored.
func BinThroughput(samples []Sample, start, end sim.Time, width time.Duration) []Bin {
	if end <= start || width <= 0 {
		return nil
	}
	n := int(end.Sub(start)/width) + 1
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Start = start.Add(time.Duration(i) * width)
	}
	for _, s := range samples {
		if s.At < start || s.At >= end {
			continue
		}
		i := int(s.At.Sub(start) / width)
		if i >= 0 && i < n {
			bins[i].Bytes += s.Bytes
		}
	}
	return bins
}

// ConnectivityLoss finds the outage the paper measures: the gap between the
// last delivery before (or just after) failAt and the first delivery after
// it. Returns 0 if deliveries never pause, and end−lastArrival if traffic
// never resumes by end.
func ConnectivityLoss(arrivals []sim.Time, failAt, end sim.Time) time.Duration {
	if len(arrivals) == 0 {
		return end.Sub(failAt)
	}
	times := append([]sim.Time(nil), arrivals...)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	// Last arrival at or before the moment in-flight traffic drains
	// (small grace for packets already past the failed hop).
	const grace = 5 * time.Millisecond
	lastBefore := -1
	for i, t := range times {
		if t <= failAt.Add(grace) {
			lastBefore = i
		}
	}
	if lastBefore == -1 {
		// Nothing delivered before the failure; measure from failAt.
		return times[0].Sub(failAt)
	}
	if lastBefore == len(times)-1 {
		return end.Sub(times[lastBefore])
	}
	return times[lastBefore+1].Sub(times[lastBefore])
}

// CollapseDuration measures how long binned throughput stays below
// half the pre-failure average after failAt — the paper's "duration of
// throughput collapse". Recovery requires sustaining ≥ half for
// `sustain` consecutive bins (2 is the paper-faithful choice at 20 ms
// bins). Returns the duration from failAt to the start of the sustained
// recovery, or end−failAt if it never recovers.
func CollapseDuration(bins []Bin, width time.Duration, failAt sim.Time, preFailAvgBytes float64, sustain int) time.Duration {
	if sustain < 1 {
		sustain = 1
	}
	half := preFailAvgBytes / 2
	firstIdx := -1
	for i, b := range bins {
		if b.Start.Add(width) > failAt {
			firstIdx = i
			break
		}
	}
	if firstIdx == -1 {
		return 0
	}
	for i := firstIdx; i < len(bins); i++ {
		ok := true
		for j := 0; j < sustain; j++ {
			if i+j >= len(bins) || float64(bins[i+j].Bytes) < half {
				ok = false
				break
			}
		}
		if ok {
			if d := bins[i].Start.Sub(failAt); d > 0 {
				return d
			}
			return 0
		}
	}
	if len(bins) == 0 {
		return 0
	}
	last := bins[len(bins)-1].Start.Add(width)
	return last.Sub(failAt)
}

// PreFailureAverage returns the average bytes/bin over bins entirely
// before failAt.
func PreFailureAverage(bins []Bin, width time.Duration, failAt sim.Time) float64 {
	var sum, n float64
	for _, b := range bins {
		if b.Start.Add(width) <= failAt {
			sum += float64(b.Bytes)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// DelayPoint is one end-to-end delay observation for Fig 5.
type DelayPoint struct {
	SentAt sim.Time
	Delay  time.Duration
}

// CDF is an empirical distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from values (copied, then sorted).
func NewCDF(values []float64) *CDF {
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	return &CDF{sorted: v}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Quantile returns the p-quantile (p in [0,1]) by nearest-rank.
func (c *CDF) Quantile(p float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, fmt.Errorf("metrics: empty CDF")
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("metrics: quantile %v outside [0,1]", p)
	}
	idx := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx], nil
}

// FractionAbove returns the fraction of samples strictly greater than x.
func (c *CDF) FractionAbove(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(len(c.sorted)-i) / float64(len(c.sorted))
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 { return 1 - c.FractionAbove(x) }

// Values returns the sorted samples (caller must not mutate).
func (c *CDF) Values() []float64 { return c.sorted }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.sorted {
		s += v
	}
	return s / float64(len(c.sorted))
}
