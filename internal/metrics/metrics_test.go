package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * sim.Millisecond }

func TestBinThroughput(t *testing.T) {
	samples := []Sample{
		{At: ms(1), Bytes: 100},
		{At: ms(5), Bytes: 100},
		{At: ms(25), Bytes: 300},
		{At: ms(45), Bytes: 700},
		{At: ms(999), Bytes: 9}, // outside span
	}
	bins := BinThroughput(samples, 0, ms(60), 20*time.Millisecond)
	if len(bins) != 4 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Bytes != 200 || bins[1].Bytes != 300 || bins[2].Bytes != 700 || bins[3].Bytes != 0 {
		t.Fatalf("bin contents: %+v", bins)
	}
	// 200 bytes / 20 ms = 0.08 Mbps.
	if got := bins[0].Mbps(20 * time.Millisecond); math.Abs(got-0.08) > 1e-9 {
		t.Fatalf("Mbps = %v", got)
	}
	if BinThroughput(samples, ms(60), 0, 20*time.Millisecond) != nil {
		t.Fatal("inverted span should return nil")
	}
}

func TestConnectivityLossBasic(t *testing.T) {
	// Arrivals every 1 ms until 100 ms, resuming at 372 ms.
	var arrivals []sim.Time
	for i := 1; i <= 100; i++ {
		arrivals = append(arrivals, ms(i))
	}
	for i := 372; i <= 400; i++ {
		arrivals = append(arrivals, ms(i))
	}
	got := ConnectivityLoss(arrivals, ms(100), ms(400))
	if got != 272*time.Millisecond {
		t.Fatalf("loss = %v, want 272ms", got)
	}
}

func TestConnectivityLossNeverRecovers(t *testing.T) {
	arrivals := []sim.Time{ms(1), ms(2), ms(3)}
	got := ConnectivityLoss(arrivals, ms(3), ms(500))
	if got != 497*time.Millisecond {
		t.Fatalf("loss = %v, want 497ms", got)
	}
}

func TestConnectivityLossNoArrivals(t *testing.T) {
	if got := ConnectivityLoss(nil, ms(100), ms(500)); got != 400*time.Millisecond {
		t.Fatalf("loss = %v", got)
	}
}

func TestConnectivityLossUnsortedInputAndGrace(t *testing.T) {
	// In-flight packets arriving ≤ 5 ms after the failure moment count as
	// "before".
	arrivals := []sim.Time{ms(103), ms(2), ms(1), ms(350)}
	got := ConnectivityLoss(arrivals, ms(100), ms(400))
	if got != 247*time.Millisecond {
		t.Fatalf("loss = %v, want 247ms (103→350)", got)
	}
}

func TestCollapseDurationRecovers(t *testing.T) {
	width := 20 * time.Millisecond
	// 10 healthy bins (1000 B), failure at 200 ms, 10 dead bins, then
	// recovery.
	var bins []Bin
	for i := 0; i < 30; i++ {
		b := Bin{Start: sim.Time(i) * sim.Time(width)}
		switch {
		case i < 10:
			b.Bytes = 1000
		case i < 20:
			b.Bytes = 0
		default:
			b.Bytes = 1000
		}
		bins = append(bins, b)
	}
	avg := PreFailureAverage(bins, width, ms(200))
	if avg != 1000 {
		t.Fatalf("pre-failure avg = %v", avg)
	}
	got := CollapseDuration(bins, width, ms(200), avg, 2)
	if got != 200*time.Millisecond {
		t.Fatalf("collapse = %v, want 200ms", got)
	}
}

func TestCollapseDurationIgnoresBlip(t *testing.T) {
	width := 20 * time.Millisecond
	var bins []Bin
	for i := 0; i < 30; i++ {
		b := Bin{Start: sim.Time(i) * sim.Time(width), Bytes: 0}
		if i < 10 {
			b.Bytes = 1000
		}
		if i == 14 { // single-bin blip must not count as recovery
			b.Bytes = 900
		}
		if i >= 20 {
			b.Bytes = 1000
		}
		bins = append(bins, b)
	}
	got := CollapseDuration(bins, width, ms(200), 1000, 2)
	if got != 200*time.Millisecond {
		t.Fatalf("collapse = %v, want 200ms (blip ignored)", got)
	}
}

func TestCollapseDurationNeverRecovers(t *testing.T) {
	width := 20 * time.Millisecond
	bins := []Bin{{Start: 0, Bytes: 1000}, {Start: sim.Time(width), Bytes: 0}, {Start: 2 * sim.Time(width), Bytes: 0}}
	got := CollapseDuration(bins, width, sim.Time(width), 1000, 2)
	if got != 2*width {
		t.Fatalf("collapse = %v, want %v", got, 2*width)
	}
}

func TestCDFQuantilesAndFractions(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	c := NewCDF(vals)
	if c.Len() != 100 {
		t.Fatal("len")
	}
	q50, err := c.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q50 != 50 {
		t.Fatalf("median = %v", q50)
	}
	q99, err := c.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if q99 != 99 {
		t.Fatalf("p99 = %v", q99)
	}
	if got := c.FractionAbove(90); math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("FractionAbove(90) = %v", got)
	}
	if got := c.At(100); got != 1 {
		t.Fatalf("At(max) = %v", got)
	}
	if got := c.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if _, err := c.Quantile(1.5); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
	empty := NewCDF(nil)
	if _, err := empty.Quantile(0.5); err == nil {
		t.Fatal("empty CDF quantile accepted")
	}
	if empty.FractionAbove(1) != 0 || empty.Mean() != 0 {
		t.Fatal("empty CDF stats should be zero")
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	_ = NewCDF(vals)
	if vals[0] != 3 {
		t.Fatal("input mutated")
	}
}
