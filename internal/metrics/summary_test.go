package metrics

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero Summary", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	want := Summary{Count: 1, Mean: 42, P50: 42, P99: 42, Max: 42}
	if s != want {
		t.Fatalf("Summarize([42]) = %+v, want %+v", s, want)
	}
}

// TestSummarizeNearestRank pins the exact quantile convention: for n=100
// values 1..100, nearest-rank gives p50=50 (ceil(0.5*100)=50th value) and
// p99=99 (ceil(0.99*100)=99th value), NOT interpolated midpoints.
func TestSummarizeNearestRank(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	s := Summarize(vals)
	want := Summary{Count: 100, Mean: 50.5, P50: 50, P99: 99, Max: 100}
	if s != want {
		t.Fatalf("Summarize(1..100) = %+v, want %+v", s, want)
	}
}

// TestSummarizeOrderInvariant: aggregation over a latency series must not
// depend on arrival order — the determinism contract for /metrics output.
func TestSummarizeOrderInvariant(t *testing.T) {
	asc := []float64{1, 2, 3, 5, 8, 13, 21, 34}
	shuffled := []float64{21, 3, 34, 1, 13, 5, 8, 2}
	a, b := Summarize(asc), Summarize(shuffled)
	if a != b {
		t.Fatalf("order-dependent summary: %+v vs %+v", a, b)
	}
}

func TestSummarizeSmallN(t *testing.T) {
	// n=3: p50 -> ceil(1.5)=2nd value, p99 -> ceil(2.97)=3rd value.
	s := Summarize([]float64{10, 20, 30})
	if s.P50 != 20 || s.P99 != 30 || s.Max != 30 || s.Count != 3 {
		t.Fatalf("Summarize(3 values) = %+v", s)
	}
	if math.Abs(s.Mean-20) > 1e-12 {
		t.Fatalf("mean = %v, want 20", s.Mean)
	}
}
