package metrics

// Summary is the five-number aggregation a service exposes per latency
// series: computed with the same nearest-rank quantiles as the paper's
// CDFs, so a /metrics scrape and an offline CDF over the same samples
// agree exactly.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summarize aggregates values into a Summary. An empty input yields the
// zero Summary (Count 0) rather than an error: a service scrapes its
// metrics before the first sample arrives.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	c := NewCDF(values)
	p50, _ := c.Quantile(0.50)
	p99, _ := c.Quantile(0.99)
	return Summary{
		Count: c.Len(),
		Mean:  c.Mean(),
		P50:   p50,
		P99:   p99,
		Max:   c.sorted[len(c.sorted)-1],
	}
}
