package failure

import (
	"testing"

	"repro/internal/fib"
	"repro/internal/network"
	"repro/internal/ospf"
	"repro/internal/sim"
	"repro/internal/topo"
)

// build returns a bootstrapped network over the given topology.
func build(t *testing.T, tp *topo.Topology) (*sim.Simulator, *network.Network) {
	t.Helper()
	s := sim.New(11)
	nw, err := network.New(s, tp, network.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ospf.NewDomain(nw, ospf.Config{}).Bootstrap(); err != nil {
		t.Fatal(err)
	}
	return s, nw
}

// interPodPath traces leftmost→rightmost host.
func interPodPath(t *testing.T, nw *network.Network) network.Path {
	t.Helper()
	hosts := nw.Topology().NodesOfKind(topo.Host)
	src, dst := hosts[0], hosts[len(hosts)-1]
	flow := fib.FlowKey{
		Src: nw.Topology().Node(src).Addr, Dst: nw.Topology().Node(dst).Addr,
		Proto: network.ProtoUDP, SrcPort: 40000, DstPort: 9,
	}
	p, err := nw.PathTrace(src, flow)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConditionLinksOnF2Tree(t *testing.T) {
	tp, err := topo.F2Tree(8)
	if err != nil {
		t.Fatal(err)
	}
	_, nw := build(t, tp)
	path := interPodPath(t, nw)

	wantCount := map[Condition]int{
		C1: 1, C2: 1, C3: 2, C4: 2,
		C5: 3, // 4 aggs in the pod, all but the left across neighbor
		C6: 2, C7: 3,
	}
	for _, cond := range AllConditions() {
		links, err := ConditionLinks(tp, cond, path)
		if err != nil {
			t.Fatalf("%v: %v", cond, err)
		}
		if len(links) != wantCount[cond] {
			t.Errorf("%v: %d links, want %d", cond, len(links), wantCount[cond])
		}
		// No duplicates.
		seen := map[topo.LinkID]bool{}
		for _, id := range links {
			if seen[id] {
				t.Errorf("%v: duplicate link %d", cond, id)
			}
			seen[id] = true
		}
	}

	// C6 and C7 must include an across link; C1–C5 must not.
	hasAcross := func(cond Condition) bool {
		links, err := ConditionLinks(tp, cond, path)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range links {
			if tp.Link(id).Class == topo.AcrossLink {
				return true
			}
		}
		return false
	}
	for _, cond := range []Condition{C1, C2, C3, C4, C5} {
		if hasAcross(cond) {
			t.Errorf("%v should not touch across links", cond)
		}
	}
	for _, cond := range []Condition{C6, C7} {
		if !hasAcross(cond) {
			t.Errorf("%v must fail an across link", cond)
		}
	}
}

func TestConditionLinksOnFatTree(t *testing.T) {
	tp, err := topo.FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	_, nw := build(t, tp)
	path := interPodPath(t, nw)
	for _, cond := range []Condition{C1, C2, C3, C4, C5} {
		if _, err := ConditionLinks(tp, cond, path); err != nil {
			t.Errorf("%v on fat tree: %v", cond, err)
		}
		if !cond.FatTreeApplicable() {
			t.Errorf("%v should be fat-tree applicable", cond)
		}
	}
	for _, cond := range []Condition{C6, C7} {
		if _, err := ConditionLinks(tp, cond, path); err == nil {
			t.Errorf("%v should fail on fat tree (no across links)", cond)
		}
		if cond.FatTreeApplicable() {
			t.Errorf("%v should not be fat-tree applicable", cond)
		}
	}
}

func TestConditionMetadata(t *testing.T) {
	if len(AllConditions()) != 7 {
		t.Fatal("want 7 conditions")
	}
	wantPaper := map[Condition]int{C1: 1, C2: 1, C3: 1, C4: 2, C5: 2, C6: 3, C7: 4}
	for c, w := range wantPaper {
		if got := c.PaperCondition(); got != w {
			t.Errorf("%v paper condition = %d, want %d", c, got, w)
		}
		if c.Describe() == "unknown" || c.String() == "" {
			t.Errorf("%v lacks description", c)
		}
	}
	if Condition(99).PaperCondition() != 0 {
		t.Error("invalid condition should map to 0")
	}
}

func TestConditionLinksRejectsShortPath(t *testing.T) {
	tp, err := topo.F2Tree(8)
	if err != nil {
		t.Fatal(err)
	}
	_, nw := build(t, tp)
	// Intra-ToR path: host → tor → host.
	tor := tp.NodesOfKind(topo.ToR)[0]
	hosts := tp.HostsUnder(tor)
	flow := fib.FlowKey{
		Src: tp.Node(hosts[0]).Addr, Dst: tp.Node(hosts[1]).Addr,
		Proto: network.ProtoUDP, SrcPort: 1, DstPort: 2,
	}
	p, err := nw.PathTrace(hosts[0], flow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConditionLinks(tp, C1, p); err == nil {
		t.Fatal("short path accepted")
	}
}

func TestInjectSchedulesFailures(t *testing.T) {
	tp, err := topo.F2Tree(8)
	if err != nil {
		t.Fatal(err)
	}
	s, nw := build(t, tp)
	path := interPodPath(t, nw)
	links, err := ConditionLinks(tp, C3, path)
	if err != nil {
		t.Fatal(err)
	}
	Inject(nw, links, 100*sim.Millisecond)
	if err := s.Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, id := range links {
		if nw.LinkUp(id) {
			t.Fatalf("link %d still up after Inject", id)
		}
	}
}

func TestRandomProcessGeneratesAndRepairs(t *testing.T) {
	tp, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	s, nw := build(t, tp)
	cfg, err := DefaultRandomConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := s.Run(600 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// The paper reports ≈ 40 failures in 600 s at 1 concurrent failure.
	if p.Count() < 20 || p.Count() > 80 {
		t.Fatalf("failures = %d, want ≈ 40", p.Count())
	}
	p.Stop()
	if err := s.Run(700 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if p.Active() != 0 {
		t.Fatalf("%d links still failed after stop+drain", p.Active())
	}
}

func TestRandomProcessChannelsScaleConcurrency(t *testing.T) {
	tp, err := topo.FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	s, nw := build(t, tp)
	cfg, err := DefaultRandomConfig(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxActive := 0
	stop := nw.Sim().Ticker(sim.Time(1*sim.Second).Duration(), func(sim.Time) {
		if p.Active() > maxActive {
			maxActive = p.Active()
		}
	})
	defer stop()
	p.Start()
	if err := s.Run(600 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if p.Count() < 60 {
		t.Fatalf("failures = %d, want ≈ 100+", p.Count())
	}
	if maxActive < 2 {
		t.Fatalf("max concurrent failures = %d, want ≥ 2", maxActive)
	}
}

// TestStopCancelsPendingEvents is the regression test for the Stop bug:
// Stop used to only set a flag, leaving the already-scheduled
// inter-failure waits in the queue — the simulator could not quiesce
// until the last sampled wait (potentially minutes of virtual time)
// elapsed as a dead event. Stop must Cancel the outstanding handles.
func TestStopCancelsPendingEvents(t *testing.T) {
	tp, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	s, nw := build(t, tp)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	idle := s.Now()

	cfg, err := DefaultRandomConfig(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Stop()
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != idle {
		t.Fatalf("clock advanced %v past stop: pending failure events not canceled",
			(s.Now() - idle).Duration())
	}
	if p.Count() != 0 {
		t.Fatalf("%d failures injected after Stop", p.Count())
	}

	// Stopping mid-run keeps the repair invariant: no link stays failed.
	p2, err := NewProcess(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2.Start()
	if err := s.Run(s.Now() + 120*sim.Second); err != nil {
		t.Fatal(err)
	}
	p2.Stop()
	stopAt := s.Now()
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if p2.Active() != 0 {
		t.Fatalf("%d links still failed after stop+drain", p2.Active())
	}
	// Only in-flight repairs may remain: the drain is bounded by a repair
	// duration, not by the next inter-failure wait of every channel.
	if s.Now()-stopAt > 300*sim.Second {
		t.Fatalf("drain took %v of virtual time", (s.Now() - stopAt).Duration())
	}
}

func TestRandomProcessRejectsBadConfig(t *testing.T) {
	tp, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	_, nw := build(t, tp)
	if _, err := NewProcess(nw, RandomConfig{Channels: 0}); err == nil {
		t.Fatal("0 channels accepted")
	}
	cfg, err := DefaultRandomConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Classes = []topo.LinkClass{topo.AcrossLink} // none in a fat tree
	if _, err := NewProcess(nw, cfg); err == nil {
		t.Fatal("no-candidate config accepted")
	}
}
