// Package failure injects link failures: the seven deterministic
// conditions of the paper's Table IV (built relative to a flow's current
// forwarding path, as the paper does) and the random log-normal failure
// process of §IV-B derived from production measurements.
package failure

import (
	"fmt"
	"time"

	"repro/internal/detsort"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Condition labels the failure conditions of Table IV.
type Condition int

// Table IV conditions.
const (
	C1 Condition = iota + 1 // 1 ToR–agg link (1st condition of §II-C)
	C2                      // 1 core–agg link (1st)
	C3                      // C1 + C2 together (1st)
	C4                      // 2 adjacent ToR–agg links in the pod (2nd)
	C5                      // all ToR–agg links in the pod except the left across neighbor's (2nd)
	C6                      // 1 ToR–agg link + Sx's right across link (3rd)
	C7                      // 2 ToR–agg links + 1 right across link (4th: fast reroute fails)
)

// String names the condition like the paper.
func (c Condition) String() string {
	if c >= C1 && c <= C7 {
		return fmt.Sprintf("C%d", int(c))
	}
	return fmt.Sprintf("Condition(%d)", int(c))
}

// Describe returns the paper's Table IV row text.
func (c Condition) Describe() string {
	switch c {
	case C1:
		return "1 link between ToR and aggregation switch"
	case C2:
		return "1 link between core and aggregation switch"
	case C3:
		return "1 ToR-agg link & 1 core-agg link"
	case C4:
		return "2 adjacent ToR-agg links in the same pod"
	case C5:
		return "all ToR-agg links in the pod except the left across neighbor's"
	case C6:
		return "1 ToR-agg link & 1 right across link"
	case C7:
		return "2 ToR-agg links & 1 right across link"
	default:
		return "unknown"
	}
}

// PaperCondition maps a Table IV label to the §II-C failure condition
// number it belongs to.
func (c Condition) PaperCondition() int {
	switch c {
	case C1, C2, C3:
		return 1
	case C4, C5:
		return 2
	case C6:
		return 3
	case C7:
		return 4
	default:
		return 0
	}
}

// AllConditions lists C1..C7 in order.
func AllConditions() []Condition {
	return []Condition{C1, C2, C3, C4, C5, C6, C7}
}

// FatTreeApplicable reports whether the condition exists in a plain fat
// tree (C6/C7 involve across links and are F²Tree-specific, §IV-A).
func (c Condition) FatTreeApplicable() bool { return c <= C5 }

// rightNeighbor returns the switch "to the right" of a (ring order if a
// ring exists, same-layer pod index order otherwise) and, when reached via
// a ring, the across link to it.
func rightNeighbor(t *topo.Topology, a topo.NodeID) (topo.NodeID, topo.LinkID, error) {
	if n, l, ok := t.RightAcross(a); ok {
		return n, l, nil
	}
	peers := layerPeers(t, a)
	for i, id := range peers {
		if id == a {
			return peers[(i+1)%len(peers)], topo.None, nil
		}
	}
	return topo.None, topo.None, fmt.Errorf("failure: %s not found among layer peers", t.Node(a).Name)
}

// leftNeighbor mirrors rightNeighbor.
func leftNeighbor(t *topo.Topology, a topo.NodeID) (topo.NodeID, topo.LinkID, error) {
	if n, l, ok := t.LeftAcross(a); ok {
		return n, l, nil
	}
	peers := layerPeers(t, a)
	for i, id := range peers {
		if id == a {
			return peers[(i-1+len(peers))%len(peers)], topo.None, nil
		}
	}
	return topo.None, topo.None, fmt.Errorf("failure: %s not found among layer peers", t.Node(a).Name)
}

// layerPeers returns the switches sharing a's kind and pod, in index order.
func layerPeers(t *topo.Topology, a topo.NodeID) []topo.NodeID {
	nd := t.Node(a)
	var peers []topo.NodeID
	for _, id := range t.NodesOfKind(nd.Kind) {
		if t.Node(id).Pod == nd.Pod {
			peers = append(peers, id)
		}
	}
	return peers
}

// linkBetween returns the single live link joining a and b.
func linkBetween(t *topo.Topology, a, b topo.NodeID) (topo.LinkID, error) {
	ls := t.LinksBetween(a, b)
	if len(ls) == 0 {
		return topo.None, fmt.Errorf("failure: no link %s–%s", t.Node(a).Name, t.Node(b).Name)
	}
	return ls[0].ID, nil
}

// ConditionLinks computes which links to fail for a Table IV condition,
// relative to the flow's current path (which must end host←ToR←agg←core…,
// i.e. an inter-pod path). Returns the link set to fail simultaneously.
func ConditionLinks(t *topo.Topology, cond Condition, path network.Path) ([]topo.LinkID, error) {
	n := len(path.Nodes)
	if n < 4 || path.Hops() < 3 {
		return nil, fmt.Errorf("failure: path too short (%d nodes)", n)
	}
	dstToR := path.Nodes[n-2]
	sx := path.Nodes[n-3] // the downward switch Sx (agg, or spine in 2-layer fabrics)
	if t.Node(dstToR).Kind != topo.ToR ||
		(t.Node(sx).Kind != topo.Agg && t.Node(sx).Kind != topo.Core) {
		return nil, fmt.Errorf("failure: path tail is %s←%s, want switch←tor",
			t.Node(sx).Name, t.Node(dstToR).Name)
	}
	// Links[i] joins Nodes[i]→Nodes[i+1]: Sx→dstToR is Links[n-3].
	downLink := path.Links[n-3]
	var coreDown topo.LinkID = topo.None
	if n >= 5 && t.Node(path.Nodes[n-4]).Kind == topo.Core {
		coreDown = path.Links[n-4] // core → Sx
	}

	switch cond {
	case C1:
		return []topo.LinkID{downLink}, nil
	case C2:
		if coreDown == topo.None {
			return nil, fmt.Errorf("failure: path has no core hop for C2")
		}
		return []topo.LinkID{coreDown}, nil
	case C3:
		if coreDown == topo.None {
			return nil, fmt.Errorf("failure: path has no core hop for C3")
		}
		return []topo.LinkID{downLink, coreDown}, nil
	case C4:
		right, _, err := rightNeighbor(t, sx)
		if err != nil {
			return nil, err
		}
		l2, err := linkBetween(t, right, dstToR)
		if err != nil {
			return nil, err
		}
		return []topo.LinkID{downLink, l2}, nil
	case C5:
		left, _, err := leftNeighbor(t, sx)
		if err != nil {
			return nil, err
		}
		var out []topo.LinkID
		for _, l := range t.LinksOf(dstToR) {
			other, ok := l.Other(dstToR)
			if !ok || t.Node(other).Kind == topo.Host {
				continue
			}
			if other == left {
				continue // spare the left across neighbor's downlink
			}
			out = append(out, l.ID)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("failure: C5 found no links to fail")
		}
		return out, nil
	case C6:
		_, acrossR, err := rightNeighbor(t, sx)
		if err != nil {
			return nil, err
		}
		if acrossR == topo.None {
			return nil, fmt.Errorf("failure: %s is not F²Tree-specific (no across links)", cond)
		}
		return []topo.LinkID{downLink, acrossR}, nil
	case C7:
		right, _, err := rightNeighbor(t, sx)
		if err != nil {
			return nil, err
		}
		l2, err := linkBetween(t, right, dstToR)
		if err != nil {
			return nil, err
		}
		_, acrossRR, err := rightNeighbor(t, right)
		if err != nil {
			return nil, err
		}
		if acrossRR == topo.None {
			return nil, fmt.Errorf("failure: %s is not F²Tree-specific (no across links)", cond)
		}
		return []topo.LinkID{downLink, l2, acrossRR}, nil
	default:
		return nil, fmt.Errorf("failure: unknown condition %v", cond)
	}
}

// Inject schedules all links in the set to fail at the given time.
func Inject(nw *network.Network, links []topo.LinkID, at sim.Time) {
	for _, id := range links {
		id := id
		nw.Sim().At(at, func(sim.Time) { nw.FailLink(id) })
	}
}

// SwitchLinks returns every live link of a switch. The paper (footnote 1)
// models a whole-switch failure as the failure of all its links; pass the
// result to Inject.
func SwitchLinks(t *topo.Topology, node topo.NodeID) []topo.LinkID {
	links := t.LinksOf(node)
	out := make([]topo.LinkID, 0, len(links))
	for _, l := range links {
		out = append(out, l.ID)
	}
	return out
}

// RandomConfig parameterizes the random failure process of §IV-B: link
// failures with log-normal inter-failure times and durations ([1] Gill et
// al.), across `Channels` independent streams to model concurrent failures.
type RandomConfig struct {
	// Channels is the target failure concurrency (the paper's "1 and 5
	// concurrent failures").
	Channels int
	// InterFailure is the per-channel gap between a repair and the next
	// failure, seconds.
	InterFailure sim.LogNormal
	// Duration is the failure lasting time, seconds.
	Duration sim.LogNormal
	// Classes restricts which link classes may fail; empty means all
	// switch-switch links (host links never fail, as in the paper's
	// emulation which fails fabric links).
	Classes []topo.LinkClass
}

// DefaultRandomConfig gives ≈ 40 failures per channel over 600 s with the
// strongly clustered inter-failure times production measurements report
// ([1] Gill et al.): the log-normal's heavy tail makes failures arrive in
// bursts, which is what drives OSPF's SPF hold into multi-second backoff
// even at one concurrent failure (paper §IV-B).
func DefaultRandomConfig(channels int) (RandomConfig, error) {
	inter, err := sim.LogNormalFromMedianP95(5, 120)
	if err != nil {
		return RandomConfig{}, err
	}
	dur, err := sim.LogNormalFromMedianP95(1.5, 25)
	if err != nil {
		return RandomConfig{}, err
	}
	return RandomConfig{Channels: channels, InterFailure: inter, Duration: dur}, nil
}

// Process runs the random failure generator.
type Process struct {
	nw      *network.Network
	cfg     RandomConfig
	links   []topo.LinkID
	stopped bool

	count  int
	active map[topo.LinkID]bool

	// pending tracks the not-yet-fired inter-failure waits so Stop can
	// cancel them instead of leaving dead events in the queue (which would
	// stall RunUntilIdle until the last sampled wait elapsed).
	nextWait int
	pending  map[int]sim.Handle
}

// NewProcess builds a process over nw's live fabric links.
func NewProcess(nw *network.Network, cfg RandomConfig) (*Process, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("failure: need ≥ 1 channel")
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = []topo.LinkClass{topo.EdgeLink, topo.SpineLink, topo.AcrossLink}
	}
	classOK := make(map[topo.LinkClass]bool, len(classes))
	for _, c := range classes {
		classOK[c] = true
	}
	p := &Process{
		nw: nw, cfg: cfg,
		active:  make(map[topo.LinkID]bool),
		pending: make(map[int]sim.Handle),
	}
	for _, l := range nw.Topology().LiveLinks() {
		if classOK[l.Class] {
			p.links = append(p.links, l.ID)
		}
	}
	if len(p.links) == 0 {
		return nil, fmt.Errorf("failure: no candidate links")
	}
	return p, nil
}

// Start launches the channels.
func (p *Process) Start() {
	for c := 0; c < p.cfg.Channels; c++ {
		p.scheduleNext()
	}
}

// Stop halts future failures by canceling every pending inter-failure
// wait (in-progress repairs still complete, so no link is left failed by
// stopping). After Stop the process schedules nothing further and the
// simulator can quiesce without draining dead events.
func (p *Process) Stop() {
	p.stopped = true
	for _, id := range detsort.Keys(p.pending) {
		p.nw.Sim().Cancel(p.pending[id])
		delete(p.pending, id)
	}
}

// Count returns how many failures have been injected.
func (p *Process) Count() int { return p.count }

// Active returns how many links are currently failed.
func (p *Process) Active() int { return len(p.active) }

func (p *Process) scheduleNext() {
	rng := p.nw.Sim().Rand()
	wait := time.Duration(p.cfg.InterFailure.Sample(rng) * float64(time.Second))
	wid := p.nextWait
	p.nextWait++
	p.pending[wid] = p.nw.Sim().After(wait, func(now sim.Time) {
		delete(p.pending, wid)
		if p.stopped {
			return
		}
		// Pick a currently-up candidate link.
		var id topo.LinkID = topo.None
		for try := 0; try < 32; try++ {
			cand := p.links[rng.Intn(len(p.links))]
			if !p.active[cand] {
				id = cand
				break
			}
		}
		if id == topo.None {
			p.scheduleNext()
			return
		}
		p.count++
		p.active[id] = true
		p.nw.FailLink(id)
		dur := time.Duration(p.cfg.Duration.Sample(rng) * float64(time.Second))
		p.nw.Sim().After(dur, func(sim.Time) {
			p.nw.RestoreLink(id)
			delete(p.active, id)
			if !p.stopped {
				p.scheduleNext()
			}
		})
	})
}
