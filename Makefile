# Developer entry points. `make check` is exactly what CI runs.

GO ?= go

.PHONY: build test vet f2tree-vet vet-audit race check chaos-smoke bench bench-campaign bench-hotpath

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The determinism and contract gate: stock go vet plus the analyzers from
# internal/analysis — mapiter, simclock, lockcheck, poolcheck, hotpathalloc,
# epochcheck, handlecheck (see README "Determinism gate").
f2tree-vet:
	$(GO) run ./cmd/f2tree-vet ./...

# Suppression audit: inventory every //f2tree: directive and fail on stale
# suppressions, unknown verbs and missing justifications.
vet-audit:
	$(GO) run ./cmd/f2tree-vet -novet -audit ./...

race:
	$(GO) test -race ./...

check: build f2tree-vet vet-audit race

# Fixed-seed chaos fuzz across all three control planes, checked by the
# invariant oracles (internal/chaos). Any violation is shrunk to a minimal
# replayable scenario under chaos-artifacts/ and fails the target.
chaos-smoke:
	mkdir -p chaos-artifacts
	$(GO) run ./cmd/f2tree-chaos -n 10 -schemes f2tree -ports 8 \
		-controls ospf,bgp,centralized -seed 42 -j 4 -artifacts chaos-artifacts

bench:
	$(GO) test -bench=. -benchmem

# Campaign orchestrator speedup: fig4 matrix serial vs parallel, emitting
# BENCH_campaign.json. Fails if the two aggregates differ (determinism gate)
# or if the host cannot actually run the arms in parallel (override with
# `f2tree-campaign -bench-allow-serial` to record a flagged serial run).
bench-campaign:
	$(GO) run ./cmd/f2tree-campaign -bench -j 4 -bench-out BENCH_campaign.json

# Hot-path microbenchmarks (event scheduling, packet forwarding, FIB lookup,
# fig4 end-to-end), emitting BENCH_hotpath.json and enforcing the committed
# allocs/op budgets. See DESIGN.md §9.
bench-hotpath:
	$(GO) run ./cmd/f2tree-bench -check -out BENCH_hotpath.json
