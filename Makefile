# Developer entry points. `make check` is exactly what CI runs.

GO ?= go

.PHONY: build test vet f2tree-vet race check bench bench-campaign

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The determinism gate: stock go vet plus the mapiter/simclock/lockcheck
# analyzers from internal/analysis (see README "Determinism gate").
f2tree-vet:
	$(GO) run ./cmd/f2tree-vet ./...

race:
	$(GO) test -race ./...

check: build f2tree-vet race

bench:
	$(GO) test -bench=. -benchmem

# Campaign orchestrator speedup: fig4 matrix serial vs parallel, emitting
# BENCH_campaign.json. Fails if the two aggregates differ (determinism gate).
bench-campaign:
	$(GO) run ./cmd/f2tree-campaign -bench -j 4 -bench-out BENCH_campaign.json
