# Developer entry points. `make check` is exactly what CI runs.

GO ?= go

.PHONY: build test vet fmt-check f2tree-vet vet-audit vet-cache-smoke race check chaos-smoke detect-smoke bench bench-campaign bench-hotpath serve bench-serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

# The determinism and contract gate: stock go vet plus the analyzers from
# internal/analysis — mapiter, simclock, lockcheck, poolcheck, hotpathalloc,
# epochcheck, handlecheck, shardcheck, and the CFG-backed concurrency four
# (lockorder, goleak, chanblock, wgcheck) — run in parallel dependency order
# with cross-package fact propagation (see README "Determinism gate").
f2tree-vet:
	$(GO) run ./cmd/f2tree-vet ./...

# Suppression audit: inventory every //f2tree: directive and fail on stale
# suppressions, unknown verbs and missing justifications. Runs through the
# same fact-propagating graph driver, so interprocedural findings keep
# their seams (//f2tree:shardport and friends) live.
vet-audit:
	$(GO) run ./cmd/f2tree-vet -novet -audit ./...

# Result-cache smoke: a warm second run must be all cache hits and replay
# the findings byte-identically (CI runs the same check).
vet-cache-smoke:
	rm -rf .vetcache
	$(GO) run ./cmd/f2tree-vet -novet -json -cachedir .vetcache ./... > .vetcache-cold.json 2> .vetcache-cold.log
	$(GO) run ./cmd/f2tree-vet -novet -json -cachedir .vetcache ./... > .vetcache-warm.json 2> .vetcache-warm.log
	cmp .vetcache-cold.json .vetcache-warm.json
	grep -q ' 0 miss(es)' .vetcache-warm.log
	rm -rf .vetcache .vetcache-cold.json .vetcache-warm.json .vetcache-cold.log .vetcache-warm.log

race:
	$(GO) test -race ./...

check: build fmt-check f2tree-vet vet-audit race

# Fixed-seed chaos fuzz across all three control planes, checked by the
# invariant oracles (internal/chaos). Any violation is shrunk to a minimal
# replayable scenario under chaos-artifacts/ and fails the target.
chaos-smoke:
	mkdir -p chaos-artifacts
	$(GO) run ./cmd/f2tree-chaos -n 10 -schemes f2tree -ports 8 \
		-controls ospf,bgp,centralized -seed 42 -j 4 -artifacts chaos-artifacts

# Detector study smoke: F²Tree fast reroute vs BGP graceful restart vs
# plain reconvergence under both detector models on the dual-ToR fabric,
# double-run (byte-identical traces required), all four oracles checked.
# Any oracle violation or trace divergence fails the target; the result
# list lands in detect-smoke.json (DESIGN.md §15).
detect-smoke:
	$(GO) run ./cmd/f2tree-detect -ports 6 \
		-conditions C1,C4,flap-storm,ctrl-crash,false-detect,rand \
		-double -out detect-smoke.json

bench:
	$(GO) test -bench=. -benchmem

# Campaign orchestrator speedup: fig4 matrix serial vs parallel, emitting
# BENCH_campaign.json. Fails if the two aggregates differ (determinism gate)
# or if the host cannot actually run the arms in parallel (override with
# `f2tree-campaign -bench-allow-serial` to record a flagged serial run).
bench-campaign:
	$(GO) run ./cmd/f2tree-campaign -bench -j 4 -bench-out BENCH_campaign.json

# Hot-path microbenchmarks (event scheduling, packet forwarding, FIB lookup,
# fig4 end-to-end), emitting BENCH_hotpath.json and enforcing the committed
# allocs/op budgets. See DESIGN.md §9.
bench-hotpath:
	$(GO) run ./cmd/f2tree-bench -check -out BENCH_hotpath.json

# Run the what-if query service on localhost (see DESIGN.md §13).
serve:
	$(GO) run ./cmd/f2tree-serve -addr 127.0.0.1:8080 -j 4

# What-if service benchmark over real HTTP: cold vs repeated (cached)
# queries plus a concurrent burst, emitting BENCH_serve.json. Fails if the
# repeated query is not a measured memoization hit.
bench-serve:
	$(GO) run ./cmd/f2tree-serve -bench -j 4 -bench-out BENCH_serve.json
