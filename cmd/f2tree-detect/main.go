// Command f2tree-detect runs the production failure-detection study: it
// sweeps recovery mechanism (F²Tree fast reroute, BGP graceful restart,
// plain BGP reconvergence) × detector model (fixed delay, adaptive BFD)
// over the Table IV failure conditions plus the churn faults (flap
// storms, control-plane-only crashes, detector false positives, a random
// failure mix), on the dual-ToR fabric by default. Every cell runs under
// the four chaos oracles; the report is the per-cell recovery time and
// blackhole window.
//
// Usage:
//
//	f2tree-detect [flags]
//
// Examples:
//
//	f2tree-detect -ports 6 -out detect.json
//	f2tree-detect -mechanisms f2tree,gr -conditions C1,flap-storm -double
//
// The command exits nonzero if any cell violates an oracle, or if -double
// finds a trace divergence between the two sweeps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/chaos"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-detect:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("f2tree-detect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scheme     = fs.String("scheme", "", "topology scheme (default f2tree-dual)")
		ports      = fs.Int("ports", 0, "switch port count (default 8)")
		seed       = fs.Int64("seed", 0, "base seed (default 42; cell seeds derive from it)")
		mechanisms = fs.String("mechanisms", "", "comma-separated mechanisms: f2tree,gr,reconv (default: all)")
		detectors  = fs.String("detectors", "", "comma-separated detector models: fixed,bfd (default: both)")
		conditions = fs.String("conditions", "", "comma-separated conditions: C1..C7, flap-storm, ctrl-crash, false-detect, rand (default: all)")
		reps       = fs.Int("reps", 0, "seed replicates per cell (default 1)")
		out        = fs.String("out", "", "write the full result list as JSON here")
		double     = fs.Bool("double", false, "run the sweep twice and require byte-identical traces")
		summary    = fs.Bool("summary", true, "print the per-cell summary table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	opts := chaos.DetectorCompareOpts{
		Scheme: *scheme, Ports: *ports, BaseSeed: *seed, Reps: *reps,
		Mechanisms: splitCSV(*mechanisms),
		Detectors:  splitCSV(*detectors),
		Conditions: splitCSV(*conditions),
	}
	results, err := chaos.RunDetectorCompare(opts)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("empty matrix")
	}
	if *double {
		again, err := chaos.RunDetectorCompare(opts)
		if err != nil {
			return fmt.Errorf("second sweep: %w", err)
		}
		for i := range results {
			if results[i].TraceHash != again[i].TraceHash {
				return fmt.Errorf("determinism violation: cell %+v hashed %s then %s",
					results[i].Cell, results[i].TraceHash, again[i].TraceHash)
			}
		}
		fmt.Fprintf(stdout, "double-run: %d cells byte-identical\n", len(results))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *summary {
		printSummary(stdout, results)
	}
	violations := 0
	for _, r := range results {
		violations += r.Violations
	}
	fmt.Fprintf(stdout, "detect: %d cells, %d oracle violation(s)\n", len(results), violations)
	if violations > 0 {
		return fmt.Errorf("%d oracle violation(s)", violations)
	}
	return nil
}

// printSummary renders one line per cell: the blackhole window the
// mechanism left open, plus false positives where the detector issued any.
func printSummary(w io.Writer, results []chaos.DetectorResult) {
	fmt.Fprintf(w, "%-9s %-6s %-12s %10s %12s %6s\n",
		"mechanism", "detect", "condition", "recovery", "falseDowns", "viol")
	for _, r := range results {
		fd := ""
		if r.FalseDowns > 0 {
			fd = fmt.Sprintf("%d", r.FalseDowns)
		}
		fmt.Fprintf(w, "%-9s %-6s %-12s %8dms %12s %6d\n",
			r.Cell.Mechanism, r.Cell.Detector, r.Cell.Condition, r.RecoveryMs, fd, r.Violations)
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
