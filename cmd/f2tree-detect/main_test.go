package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func TestRunRejectsBadInput(t *testing.T) {
	var out, errw strings.Builder
	for _, args := range [][]string{
		{"-badflag"},
		{"extra-arg"},
		{"-mechanisms", "magic"},
		{"-detectors", "oracle"},
		{"-conditions", "C99"},
		{"-ports", "5"}, // F²Tree needs even n ≥ 6
	} {
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestSmokeSweepWritesResults runs a one-cell sweep with -double and
// checks the JSON artifact round-trips.
func TestSmokeSweepWritesResults(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "detect.json")
	var out, errw strings.Builder
	args := []string{"-ports", "6", "-mechanisms", "f2tree", "-detectors", "fixed",
		"-conditions", "C1", "-double", "-out", outPath}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("%v\nstdout: %s\nstderr: %s", err, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "double-run: 1 cells byte-identical") {
		t.Fatalf("double-run line missing: %s", out.String())
	}
	if !strings.Contains(out.String(), "detect: 1 cells, 0 oracle violation(s)") {
		t.Fatalf("summary line missing: %s", out.String())
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var results []chaos.DetectorResult
	if err := json.Unmarshal(blob, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].RecoveryMs <= 0 || results[0].TraceHash == "" {
		t.Fatalf("malformed results: %+v", results)
	}
}
