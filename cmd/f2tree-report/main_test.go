package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTablesOnlyToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-tables-only", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table III") {
		t.Fatalf("report incomplete:\n%s", data)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-out", "/nonexistent-dir/x.md", "-tables-only"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}
