// Command f2tree-report regenerates the complete evaluation — every table
// and figure of the paper plus this repository's extensions — as one
// markdown document.
//
// Usage:
//
//	f2tree-report [-quick] [-tables-only] [-seed N] [-out file.md]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("f2tree-report", flag.ContinueOnError)
	var (
		quick  = fs.Bool("quick", false, "shrink the Fig 6 window to seconds of wall clock")
		tables = fs.Bool("tables-only", false, "only the closed-form tables and the k=4 testbed")
		seed   = fs.Int64("seed", 42, "simulation seed")
		out    = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	return report.Generate(w, report.Options{Seed: *seed, Quick: *quick, TablesOnly: *tables})
}
