// Command f2tree-report regenerates the complete evaluation — every table
// and figure of the paper plus this repository's extensions — as one
// markdown document.
//
// Usage:
//
//	f2tree-report [-quick] [-tables-only] [-parallel [-j N]] [-seed N] [-out file.md]
//
// -parallel runs the multi-run experiments (Fig 4/5, Fig 6) on the campaign
// worker pool (internal/campaign); output is byte-identical to the serial
// path because per-run seeds derive from the run specs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("f2tree-report", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "shrink the Fig 6 window to seconds of wall clock")
		tables   = fs.Bool("tables-only", false, "only the closed-form tables and the k=4 testbed")
		seed     = fs.Int64("seed", 42, "simulation seed")
		out      = fs.String("out", "", "output file (default stdout)")
		parallel = fs.Bool("parallel", false, "run multi-run experiments on the campaign worker pool")
		workers  = fs.Int("j", runtime.GOMAXPROCS(0), "worker count for -parallel")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	opts := report.Options{Seed: *seed, Quick: *quick, TablesOnly: *tables}
	if *parallel {
		opts.Parallel = *workers
	}
	return report.Generate(w, opts)
}
