// Command f2tree-chaos drives the chaos engine (internal/chaos): it fuzzes
// seeded fault scenarios across topologies and control planes, checks every
// run against the four invariant oracles (forwarding loops, packet
// conservation, blackhole windows, FIB consistency), shrinks any violation
// to a minimal replayable scenario file, and replays such files.
//
// Usage:
//
//	f2tree-chaos [flags]
//
// Examples:
//
//	f2tree-chaos -n 30 -schemes f2tree -controls ospf,bgp,centralized -j 8
//	f2tree-chaos -replay testdata/equal-prefix-c4.json
//	f2tree-chaos -demo -artifacts out/
//
// Fuzz mode exits nonzero if any scenario violates an oracle, after writing
// each violation's shrunk repro into -artifacts. The -demo mode runs the
// deliberately mis-configured equal-prefix scenario and must find the loop.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-chaos:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("f2tree-chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schemes  = fs.String("schemes", "f2tree", "comma-separated schemes to fuzz")
		ports    = fs.String("ports", "8", "comma-separated switch port counts")
		controls = fs.String("controls", "ospf,bgp,centralized", "comma-separated control planes")
		n        = fs.Int("n", 10, "scenarios per scheme × ports × control cell")
		seed     = fs.Int64("seed", 42, "campaign base seed (scenario seeds derive from it)")
		j        = fs.Int("j", runtime.GOMAXPROCS(0), "parallel workers")
		timeout  = fs.Duration("timeout", 5*time.Minute, "real-time budget per run attempt (0 = none)")
		out      = fs.String("out", "", "JSONL result store (enables resume)")
		artDir   = fs.String("artifacts", "", "directory for shrunk violation scenarios (default: alongside -out, else .)")
		maxRuns  = fs.Int("shrink-runs", 64, "execution budget per shrink")
		quiet    = fs.Bool("q", false, "suppress the progress line")
		replay   = fs.String("replay", "", "replay one scenario file and print its verdict")
		demo     = fs.Bool("demo", false, "run the known-bad equal-prefix demo and shrink its repro")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	dir := *artDir
	if dir == "" {
		if *out != "" {
			dir = filepath.Dir(*out)
		} else {
			dir = "."
		}
	}

	if *replay != "" {
		return runReplay(stdout, *replay)
	}
	if *demo {
		return runDemo(stdout, dir, *maxRuns)
	}
	return runFuzz(stdout, stderr, fuzzConfig{
		schemes: splitCSV(*schemes), ports: *ports, controls: splitCSV(*controls),
		n: *n, seed: *seed, j: *j, timeout: *timeout, out: *out,
		artifacts: dir, shrinkRuns: *maxRuns, quiet: *quiet,
	})
}

// runReplay executes one scenario file and prints the verdict.
func runReplay(stdout io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sc, err := chaos.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	v, err := chaos.RunScenario(sc)
	if err != nil {
		return err
	}
	printVerdict(stdout, path, v)
	if v.Violated() {
		return fmt.Errorf("%d oracle violation(s)", len(v.Violations))
	}
	return nil
}

// runDemo runs the known-bad equal-prefix configuration, requires the loop
// oracle to fire, and writes the shrunk minimal repro.
func runDemo(stdout io.Writer, dir string, shrinkRuns int) error {
	sc, err := chaos.KnownBad(8)
	if err != nil {
		return err
	}
	v, err := chaos.RunScenario(sc)
	if err != nil {
		return err
	}
	printVerdict(stdout, "known-bad equal-prefix C4", v)
	if !v.Violated() {
		return fmt.Errorf("demo did not trip any oracle — the detector is broken")
	}
	res, err := chaos.Shrink(sc, shrinkRuns)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "equal-prefix-c4-shrunk.json")
	if err := writeScenario(path, res.Scenario); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "demo: shrunk %d faults → %d in %d runs → %s\n",
		len(sc.Faults), len(res.Scenario.Faults), res.Runs, path)
	return nil
}

type fuzzConfig struct {
	schemes    []string
	ports      string
	controls   []string
	n          int
	seed       int64
	j          int
	timeout    time.Duration
	out        string
	artifacts  string
	shrinkRuns int
	quiet      bool
}

// runFuzz expands the chaos matrix, runs it on the campaign pool, and
// shrinks + persists every violating scenario.
func runFuzz(stdout, stderr io.Writer, cfg fuzzConfig) error {
	m := campaign.Matrix{
		Kind: campaign.KindChaos, Reps: cfg.n, BaseSeed: cfg.seed,
		Controls: cfg.controls,
	}
	for _, s := range cfg.schemes {
		m.Schemes = append(m.Schemes, exp.Scheme(s))
	}
	var err error
	if m.Ports, err = parseInts(cfg.ports); err != nil {
		return fmt.Errorf("-ports: %w", err)
	}
	specs := m.Expand()
	if len(specs) == 0 {
		return fmt.Errorf("empty matrix")
	}

	opts := campaign.Options{Parallelism: cfg.j, Timeout: cfg.timeout, Retries: 1}
	if !cfg.quiet {
		opts.Progress = stderr
	}
	if cfg.out != "" {
		store, err := campaign.OpenStore(cfg.out)
		if err != nil {
			return err
		}
		defer store.Close()
		for _, w := range store.Warnings() {
			fmt.Fprintln(stderr, "f2tree-chaos: warning:", w)
		}
		opts.Store = store
	}

	res, err := campaign.Run(specs, campaign.ExperimentRunner(), opts)
	if err != nil {
		return err
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d run(s) failed — see the result store for errors", res.Failed)
	}

	violations := 0
	var transient, runs uint64
	for _, r := range res.Results {
		runs++
		oc, ok := res.Payloads[r.Spec.Hash()].(*campaign.ChaosOutcome)
		if !ok {
			continue // resumed from the store; payload not in memory
		}
		transient += oc.Verdict.TransientLoops
		if !oc.Verdict.Violated() {
			continue
		}
		violations++
		fmt.Fprintf(stdout, "VIOLATION %s:\n", r.Spec.Key())
		for _, viol := range oc.Verdict.Violations {
			fmt.Fprintf(stdout, "  [%s] flow %d: %s\n", viol.Oracle, viol.Flow, viol.Detail)
		}
		shr, err := chaos.Shrink(oc.Scenario, cfg.shrinkRuns)
		if err != nil {
			return err
		}
		scOut, faults := oc.Scenario, len(oc.Scenario.Faults)
		if shr != nil {
			scOut, faults = shr.Scenario, len(shr.Scenario.Faults)
		}
		path := filepath.Join(cfg.artifacts, "chaos-"+r.Spec.Hash()+".json")
		if err := writeScenario(path, scOut); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  shrunk to %d fault(s) → %s\n", faults, path)
	}
	fmt.Fprintf(stdout, "chaos: %d scenarios (%d resumed), %d violation(s), %d transient loops excused\n",
		len(res.Results), res.Skipped, violations, transient)
	if violations > 0 {
		return fmt.Errorf("%d scenario(s) violated an oracle — repros written to %s", violations, cfg.artifacts)
	}
	return nil
}

func printVerdict(w io.Writer, label string, v *chaos.Verdict) {
	fmt.Fprintf(w, "%s: sent %d delivered %d dropped %d (injected %d), %d transient loops, horizon %d ms budget %d ms\n",
		label, v.Sent, v.Delivered, v.Drops, v.Injected, v.TransientLoops, v.HorizonMs, v.BudgetMs)
	sorted := append([]chaos.Violation(nil), v.Violations...)
	sort.SliceStable(sorted, func(i, k int) bool { return sorted[i].Oracle < sorted[k].Oracle })
	for _, viol := range sorted {
		fmt.Fprintf(w, "  [%s] flow %d: %s\n", viol.Oracle, viol.Flow, viol.Detail)
	}
}

func writeScenario(path string, sc *chaos.Scenario) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := chaos.Write(f, sc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
