package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func TestFuzzModeCleanMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("real chaos runs")
	}
	var out, errb bytes.Buffer
	err := run([]string{
		"-n", "1", "-schemes", "f2tree", "-ports", "8",
		"-controls", "ospf,centralized", "-q", "-artifacts", t.TempDir(),
	}, &out, &errb)
	if err != nil {
		t.Fatalf("fuzz mode failed: %v\n%s%s", err, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 violation(s)") {
		t.Fatalf("unexpected fuzz summary:\n%s", out.String())
	}
}

func TestReplayMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clean.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := &chaos.Scenario{
		Scheme: "f2tree", Ports: 8, Seed: 5,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultLinkDown, AtMs: 400, EndMs: 800, A: "agg-p0-0", B: "tor-p0-0"},
		},
	}
	if err := chaos.Write(f, sc); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errb bytes.Buffer
	if err := run([]string{"-replay", path}, &out, &errb); err != nil {
		t.Fatalf("replay failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "sent") {
		t.Fatalf("replay printed no verdict:\n%s", out.String())
	}
}

func TestReplayModeViolatingScenarioExitsNonzero(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the known-bad corpus scenario")
	}
	var out, errb bytes.Buffer
	err := run([]string{
		"-replay", filepath.Join("..", "..", "internal", "chaos",
			"testdata", "equal-prefix-c4-shrunk.json"),
	}, &out, &errb)
	if err == nil {
		t.Fatalf("replay of a violating scenario must fail\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[loop]") {
		t.Fatalf("verdict does not show the loop violation:\n%s", out.String())
	}
}

func TestDemoMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the known-bad search and shrink")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-demo", "-artifacts", dir}, &out, &errb); err != nil {
		t.Fatalf("demo failed: %v\n%s", err, out.String())
	}
	shrunk := filepath.Join(dir, "equal-prefix-c4-shrunk.json")
	f, err := os.Open(shrunk)
	if err != nil {
		t.Fatalf("demo wrote no shrunk repro: %v", err)
	}
	defer f.Close()
	sc, err := chaos.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) > 3 {
		t.Fatalf("shrunk repro has %d faults, want ≤ 3", len(sc.Faults))
	}
}

func TestRejectsUnknownArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"positional"}, &out, &errb); err == nil {
		t.Fatal("positional argument accepted")
	}
}
