package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInput(t *testing.T) {
	var out, errw strings.Builder
	for _, args := range [][]string{
		{"-badflag"},
		{"extra-arg"},
		{"-preset", "nonsense"},
		{"-kind", "nonsense"},
		{"-conditions", "C99"},
		{"-ports", "eight"},
		{"-channels", "one"},
		{"-kind", "detect", "-mechanisms", "magic"},
		{"-kind", "detect", "-detectors", "oracle"},
		{"-kind", "detect", "-conditions", "C99"},
	} {
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestBenchRefusesWithoutRealParallelism pins the honesty contract: -bench
// on a box (or with a -j) where the two arms cannot actually differ must be
// an error unless the caller opts into a flagged serial measurement.
func TestBenchRefusesWithoutRealParallelism(t *testing.T) {
	var out, errw strings.Builder
	err := run([]string{"-bench", "-j", "1", "-q"}, &out, &errw)
	if err == nil {
		t.Fatal("-bench -j 1 accepted without -bench-allow-serial")
	}
	if !strings.Contains(err.Error(), "-bench-allow-serial") {
		t.Fatalf("refusal does not mention the override: %v", err)
	}
}

func TestExpandFlagsMatrix(t *testing.T) {
	specs, err := expandFlags("", "recovery", "fattree,f2tree", "8", "C1,C4", "ospf", "1",
		"", "", 2, 42, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// 2 schemes × 2 conditions × 2 reps.
	if len(specs) != 8 {
		t.Fatalf("specs = %d, want 8", len(specs))
	}
	// A detect matrix narrowed on every axis: 1 mechanism × 1 detector ×
	// 2 conditions × 2 reps.
	specs, err = expandFlags("", "detect", "f2tree-dual", "6", "C1,flap-storm", "",
		"1", "gr", "bfd", 2, 42, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("detect specs = %d, want 4", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
	}
	for _, preset := range []string{"fig4", "fig6", "smoke", "detectors"} {
		specs, err := expandFlags(preset, "", "", "", "", "", "", "", "", 0, 42, 0, 0, false)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if len(specs) == 0 {
			t.Fatalf("%s: empty", preset)
		}
	}
}

func TestSmokeCampaignAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("4 recovery runs")
	}
	dir := t.TempDir()
	store := filepath.Join(dir, "smoke.jsonl")
	var out, errw strings.Builder
	args := []string{"-preset", "smoke", "-j", "2", "-q", "-out", store}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("smoke campaign: %v\nstdout: %s\nstderr: %s", err, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "campaign: 4 runs (0 skipped via resume), 0 failed") {
		t.Fatalf("unexpected summary: %s", out.String())
	}
	if !strings.Contains(out.String(), "recovery/fattree/C1") {
		t.Fatalf("summary table missing cells: %s", out.String())
	}

	// The store has 4 JSONL records; the aggregate file exists alongside.
	f, err := os.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if rec["status"] != "ok" {
			t.Fatalf("run failed: %v", rec)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("store has %d records, want 4", lines)
	}
	if _, err := os.Stat(filepath.Join(dir, "smoke.agg.jsonl")); err != nil {
		t.Fatalf("aggregate file missing: %v", err)
	}

	// Re-invocation resumes: everything is skipped, nothing re-runs.
	out.Reset()
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if !strings.Contains(out.String(), "(4 skipped via resume)") {
		t.Fatalf("resume did not skip completed runs: %s", out.String())
	}
}
