// Command f2tree-campaign runs batch experiment campaigns: it expands a
// declarative run matrix (scheme × ports × failure condition × control
// plane × seed replicate) into independent runs and executes them on a
// worker pool with panic isolation, per-run timeouts, bounded retry and a
// resumable JSONL result store (see internal/campaign and DESIGN.md §8).
//
// Usage:
//
//	f2tree-campaign [flags]
//
// Examples:
//
//	f2tree-campaign -preset fig4 -j 4 -out fig4.jsonl
//	f2tree-campaign -kind recovery -schemes fattree,f2tree -conditions C1,C4 \
//	    -reps 5 -j 8 -out sweep.jsonl -agg sweep-agg.jsonl
//	f2tree-campaign -bench -j 4    # emits BENCH_campaign.json
//
// Re-invoking with the same -out resumes: runs whose spec hash already has
// an ok record are skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/failure"
	"repro/internal/profile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-campaign:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("f2tree-campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset     = fs.String("preset", "", "predefined matrix: fig4, fig6, detectors or smoke (overrides matrix flags)")
		kind       = fs.String("kind", "recovery", "experiment kind: recovery, pa, chaos or detect")
		schemes    = fs.String("schemes", "fattree,f2tree", "comma-separated schemes")
		ports      = fs.String("ports", "8", "comma-separated switch port counts")
		conditions = fs.String("conditions", "", "comma-separated conditions: Table IV labels, plus churn faults for -kind detect (default: all applicable)")
		controls   = fs.String("controls", "ospf", "comma-separated control planes (recovery): ospf,bgp,centralized")
		channels   = fs.String("channels", "1", "comma-separated concurrent-failure levels (pa)")
		mechanisms = fs.String("mechanisms", "", "comma-separated recovery mechanisms (detect): f2tree,gr,reconv (default: all)")
		detectors  = fs.String("detectors", "", "comma-separated detector models (detect): fixed,bfd (default: both)")
		reps       = fs.Int("reps", 1, "seed replicates per matrix cell")
		seed       = fs.Int64("seed", 42, "campaign base seed (per-run seeds derive from it)")
		horizon    = fs.Duration("horizon", 0, "recovery run length override (0 = paper default 2s)")
		paDuration = fs.Duration("pa-duration", 0, "pa workload window override (0 = paper default 600s)")
		noBG       = fs.Bool("no-background", false, "pa: skip background traffic")

		j       = fs.Int("j", runtime.GOMAXPROCS(0), "parallel workers")
		timeout = fs.Duration("timeout", 10*time.Minute, "real-time budget per run attempt (0 = none)")
		retries = fs.Int("retries", 1, "extra attempts per run after the first")
		out     = fs.String("out", "", "JSONL result store (enables resume)")
		aggOut  = fs.String("agg", "", "write aggregated JSONL here (default: alongside -out as *.agg.jsonl)")
		summary = fs.Bool("summary", true, "print the aggregate summary table")
		quiet   = fs.Bool("q", false, "suppress the progress line")

		bench       = fs.Bool("bench", false, "benchmark mode: fig4 matrix serial vs -j, emit a BENCH json")
		benchOut    = fs.String("bench-out", "BENCH_campaign.json", "benchmark output file")
		allowSerial = fs.Bool("bench-allow-serial", false, "let -bench run even when GOMAXPROCS prevents real parallelism")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	stopProfiles, err := profile.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(stderr, "f2tree-campaign:", perr)
		}
	}()

	opts := campaign.Options{Parallelism: *j, Timeout: *timeout, Retries: *retries}
	if !*quiet {
		opts.Progress = stderr
	}

	if *bench {
		return runBench(stdout, stderr, *seed, *j, *benchOut, *allowSerial, opts)
	}

	specs, err := expandFlags(*preset, *kind, *schemes, *ports, *conditions, *controls,
		*channels, *mechanisms, *detectors, *reps, *seed, *horizon, *paDuration, *noBG)
	if err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("empty matrix")
	}

	if *out != "" {
		store, err := campaign.OpenStore(*out)
		if err != nil {
			return err
		}
		defer store.Close()
		for _, w := range store.Warnings() {
			fmt.Fprintln(stderr, "f2tree-campaign: warning:", w)
		}
		opts.Store = store
	}

	res, err := campaign.Run(specs, campaign.ExperimentRunner(), opts)
	if err != nil {
		return err
	}

	aggs := campaign.AggregateResults(res.Results)
	aggPath := *aggOut
	if aggPath == "" && *out != "" {
		aggPath = strings.TrimSuffix(*out, ".jsonl") + ".agg.jsonl"
	}
	if aggPath != "" {
		f, err := os.Create(aggPath)
		if err != nil {
			return err
		}
		if err := campaign.WriteAggregateJSONL(f, aggs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *summary {
		fmt.Fprint(stdout, campaign.SummaryTable(aggs))
	}
	fmt.Fprintf(stdout, "campaign: %d runs (%d skipped via resume), %d failed\n",
		len(res.Results), res.Skipped, res.Failed)
	if res.Failed > 0 {
		return fmt.Errorf("%d run(s) failed — see the result store for errors", res.Failed)
	}
	return nil
}

// expandFlags builds the spec list from the preset or the matrix flags.
func expandFlags(preset, kind, schemes, ports, conditions, controls, channels, mechanisms, detectors string,
	reps int, seed int64, horizon, paDuration time.Duration, noBG bool) ([]campaign.Spec, error) {
	switch preset {
	case "fig4":
		return campaign.Fig4Matrix(seed).Expand(), nil
	case "fig6":
		return campaign.Fig6Matrix(seed, int(paDuration/time.Millisecond), noBG).Expand(), nil
	case "detectors":
		return campaign.DetectorsMatrix(seed).Expand(), nil
	case "smoke":
		// Fast CI matrix: the k=4 testbed pair, shortened horizon.
		return campaign.Matrix{
			Kind:       campaign.KindRecovery,
			Schemes:    []exp.Scheme{exp.SchemeFatTree, exp.SchemeF2Proto},
			Ports:      []int{4},
			Conditions: []failure.Condition{failure.C1},
			Reps:       2,
			BaseSeed:   seed,
			HorizonMS:  900,
		}.Expand(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown preset %q (want fig4, fig6 or smoke)", preset)
	}

	m := campaign.Matrix{
		Kind: campaign.Kind(kind), Reps: reps, BaseSeed: seed,
		HorizonMS: int(horizon / time.Millisecond), DurationMS: int(paDuration / time.Millisecond),
		NoBackground: noBG, SkipInapplicable: true,
	}
	for _, s := range splitCSV(schemes) {
		m.Schemes = append(m.Schemes, exp.Scheme(s))
	}
	var err error
	if m.Ports, err = parseInts(ports); err != nil {
		return nil, fmt.Errorf("-ports: %w", err)
	}
	if m.Kind == campaign.KindDetect {
		// Detect conditions are a superset of the Table IV labels; they
		// stay strings and Spec.Validate checks them against the catalog.
		m.DetectConditions = splitCSV(conditions)
	} else if conditions == "" {
		m.Conditions = failure.AllConditions()
	} else {
		for _, label := range splitCSV(conditions) {
			c, err := campaign.ParseCondition(label)
			if err != nil {
				return nil, err
			}
			m.Conditions = append(m.Conditions, c)
		}
	}
	m.Controls = splitCSV(controls)
	m.Mechanisms = splitCSV(mechanisms)
	m.Detectors = splitCSV(detectors)
	if m.Channels, err = parseInts(channels); err != nil {
		return nil, fmt.Errorf("-channels: %w", err)
	}
	return m.Expand(), nil
}

// benchReport is the BENCH_campaign.json schema: wall-clock speedup of the
// parallel pool over serial execution on the fig4 matrix. Speedup is only a
// statement about the worker pool when ParallelismMeaningful is true — on a
// single-core box both arms run serially and the ratio is just noise, which
// Warning spells out.
type benchReport struct {
	Bench                 string  `json:"bench"`
	Runs                  int     `json:"runs"`
	J                     int     `json:"j"`
	GOMAXPROCS            int     `json:"gomaxprocs"`
	SerialSeconds         float64 `json:"serial_seconds"`
	ParallelSeconds       float64 `json:"parallel_seconds"`
	Speedup               float64 `json:"speedup"`
	RunsPerSecSerial      float64 `json:"runs_per_sec_serial"`
	RunsPerSecParallel    float64 `json:"runs_per_sec_parallel"`
	AggregatesIdentical   bool    `json:"aggregates_identical"`
	ParallelismMeaningful bool    `json:"parallelism_meaningful"`
	Warning               string  `json:"warning,omitempty"`
}

func runBench(stdout, stderr io.Writer, seed int64, j int, outPath string, allowSerial bool, opts campaign.Options) error {
	meaningful := runtime.GOMAXPROCS(0) > 1 && j > 1
	if !meaningful {
		msg := fmt.Sprintf("GOMAXPROCS=%d, j=%d: the serial and parallel arms cannot differ, so the measured speedup says nothing about the worker pool",
			runtime.GOMAXPROCS(0), j)
		if !allowSerial {
			return fmt.Errorf("-bench refused: %s (re-run on a multi-core machine, or pass -bench-allow-serial to record an explicitly-flagged serial measurement)", msg)
		}
		fmt.Fprintln(stderr, "f2tree-campaign: warning:", msg)
	}
	specs := campaign.Fig4Matrix(seed).Expand()
	render := func(par int) (string, float64, error) {
		o := opts
		o.Parallelism = par
		begin := time.Now() //f2tree:wallclock measures real elapsed time for the parallel-speedup report
		res, err := campaign.Run(specs, campaign.ExperimentRunner(), o)
		if err != nil {
			return "", 0, err
		}
		if res.Failed > 0 {
			return "", 0, fmt.Errorf("%d run(s) failed at j=%d", res.Failed, par)
		}
		var b strings.Builder
		if err := campaign.WriteAggregateJSONL(&b, campaign.AggregateResults(res.Results)); err != nil {
			return "", 0, err
		}
		return b.String(), time.Since(begin).Seconds(), nil //f2tree:wallclock paired with the Now above
	}
	serialAgg, serialS, err := render(1)
	if err != nil {
		return err
	}
	parAgg, parS, err := render(j)
	if err != nil {
		return err
	}
	rep := benchReport{
		Bench: "campaign-fig4", Runs: len(specs), J: j, GOMAXPROCS: runtime.GOMAXPROCS(0),
		SerialSeconds: serialS, ParallelSeconds: parS, Speedup: serialS / parS,
		RunsPerSecSerial:      float64(len(specs)) / serialS,
		RunsPerSecParallel:    float64(len(specs)) / parS,
		AggregatesIdentical:   serialAgg == parAgg,
		ParallelismMeaningful: meaningful,
	}
	if !meaningful {
		rep.Warning = fmt.Sprintf("measured with GOMAXPROCS=%d, j=%d: both arms executed serially; speedup is scheduling noise, not pool throughput",
			runtime.GOMAXPROCS(0), j)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bench: %d runs — serial %.1fs, j=%d %.1fs, speedup %.2fx (aggregates identical: %v) → %s\n",
		rep.Runs, rep.SerialSeconds, rep.J, rep.ParallelSeconds, rep.Speedup, rep.AggregatesIdentical, outPath)
	if !rep.AggregatesIdentical {
		return fmt.Errorf("serial and parallel aggregates differ — determinism regression")
	}
	return nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
