// Command f2tree-sim runs a custom what-if scenario described in JSON:
// pick a topology and control plane, attach probe flows, and script a
// timeline of link/switch failures; the report carries per-flow outage
// metrics.
//
// Usage:
//
//	f2tree-sim [-cpuprofile cpu.pprof] [-memprofile mem.pprof] scenario.json
//	f2tree-sim - < scenario.json
//
// Example scenario:
//
//	{
//	  "scheme": "f2tree", "ports": 8, "seed": 1,
//	  "flows": [{"src": "leftmost", "dst": "rightmost"}],
//	  "events": [
//	    {"atMs": 380, "action": "fail-condition", "condition": "C1", "flow": 0},
//	    {"atMs": 900, "action": "fail-switch", "node": "agg-p0-1"}
//	  ]
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/profile"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("f2tree-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: f2tree-sim [flags] <scenario.json | ->")
	}
	var r io.Reader
	if name := fs.Arg(0); name == "-" {
		r = stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc, err := scenario.Parse(r)
	if err != nil {
		return err
	}
	stopProfiles, err := profile.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	rep, err := scenario.Run(sc)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	return scenario.WriteReport(stdout, rep)
}
