// Command f2tree-sim runs a custom what-if scenario described in JSON:
// pick a topology and control plane, attach probe flows, and script a
// timeline of link/switch failures; the report carries per-flow outage
// metrics.
//
// Usage:
//
//	f2tree-sim scenario.json
//	f2tree-sim - < scenario.json
//
// Example scenario:
//
//	{
//	  "scheme": "f2tree", "ports": 8, "seed": 1,
//	  "flows": [{"src": "leftmost", "dst": "rightmost"}],
//	  "events": [
//	    {"atMs": 380, "action": "fail-condition", "condition": "C1", "flow": 0},
//	    {"atMs": 900, "action": "fail-switch", "node": "agg-p0-1"}
//	  ]
//	}
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: f2tree-sim <scenario.json | ->")
	}
	var r io.Reader
	if args[0] == "-" {
		r = stdin
	} else {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc, err := scenario.Parse(r)
	if err != nil {
		return err
	}
	rep, err := scenario.Run(sc)
	if err != nil {
		return err
	}
	return scenario.WriteReport(stdout, rep)
}
