package main

import (
	"bytes"
	"strings"
	"testing"
)

const doc = `{
  "scheme": "f2tree", "ports": 8, "seed": 1,
  "flows": [{"src": "leftmost", "dst": "rightmost", "intervalUs": 1000}],
  "events": [{"atMs": 380, "action": "fail-condition", "condition": "C1", "flow": 0}]
}`

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-"}, strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "connectivityLossMs") {
		t.Fatalf("report missing metrics: %s", out.String())
	}
}

func TestRunRejectsUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"/does/not/exist.json"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-"}, strings.NewReader("{"), &out); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
