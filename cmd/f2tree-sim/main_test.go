package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const doc = `{
  "scheme": "f2tree", "ports": 8, "seed": 1,
  "flows": [{"src": "leftmost", "dst": "rightmost", "intervalUs": 1000}],
  "events": [{"atMs": 380, "action": "fail-condition", "condition": "C1", "flow": 0}]
}`

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-"}, strings.NewReader(doc), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "connectivityLossMs") {
		t.Fatalf("report missing metrics: %s", out.String())
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	args := []string{"-cpuprofile", cpu, "-memprofile", mem, "-"}
	if err := run(args, strings.NewReader(doc), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestRunRejectsUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"/does/not/exist.json"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-"}, strings.NewReader("{"), &out, io.Discard); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
