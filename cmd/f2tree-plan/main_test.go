package main

import "testing"

func TestRunSchemes(t *testing.T) {
	cases := [][]string{
		{"-scheme", "f2tree", "-n", "8"},
		{"-scheme", "f2tree", "-n", "8", "-routes"},
		{"-scheme", "fattree", "-n", "4"}, // no rings: prints and exits
		{"-scheme", "f2leafspine", "-n", "8"},
		{"-scheme", "f2tree-proto", "-n", "4"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-scheme", "bogus"},
		{"-scheme", "f2tree", "-n", "5"},
		{"-badflag"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
