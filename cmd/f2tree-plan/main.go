// Command f2tree-plan builds a topology and prints its structure, the
// F²Tree rewiring summary and the backup-route configuration the scheme
// installs — the operational artifact an operator would review before
// rewiring a production pod (paper Table II).
//
// Usage:
//
//	f2tree-plan [-scheme f2tree] [-n 8] [-routes]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/topo"
	"repro/internal/vis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-plan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("f2tree-plan", flag.ContinueOnError)
	var (
		scheme   = fs.String("scheme", "f2tree", "topology scheme (fattree, f2tree, f2tree-proto, f2tree-wide, leafspine, f2leafspine, vl2, f2vl2, aspen)")
		n        = fs.Int("n", 8, "switch port count")
		routes   = fs.Bool("routes", false, "dump every backup route (Table II rows)")
		draw     = fs.Bool("draw", false, "render a pod/ring diagram")
		jsonDump = fs.Bool("json", false, "export the topology as JSON to stdout and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tp, err := exp.BuildTopology(exp.Scheme(*scheme), *n)
	if err != nil {
		return err
	}
	if err := tp.Validate(); err != nil {
		return err
	}
	if *jsonDump {
		return tp.WriteJSON(os.Stdout)
	}
	fmt.Printf("topology %s\n", tp.Name)
	fmt.Printf("  switches: %d (tor %d, agg %d, core %d)\n", tp.SwitchCount(),
		len(tp.NodesOfKind(topo.ToR)), len(tp.NodesOfKind(topo.Agg)), len(tp.NodesOfKind(topo.Core)))
	fmt.Printf("  hosts:    %d\n", tp.HostCount())
	fmt.Printf("  links:    %d live\n", len(tp.LiveLinks()))
	fmt.Printf("  DCN prefix %v, covering %v\n", tp.Plan.DCNPrefix, tp.Plan.Covering)
	an := tp.Analyze()
	fmt.Printf("  switch diameter %d, inter-pod shortest-path diversity %d\n",
		an.Diameter, an.InterPodPaths)
	if *draw {
		fmt.Print(vis.Topology(tp))
	}

	if len(tp.Rings) == 0 {
		fmt.Println("  no rings: not an F²Tree variant, nothing to configure")
		return nil
	}
	plan, err := core.PlanBackupRoutes(tp)
	if err != nil {
		return err
	}
	s := core.Summarize(tp, plan)
	fmt.Printf("rewiring summary\n")
	fmt.Printf("  rings: %d   across links: %d   switches rewired: %d   backup routes: %d\n",
		s.Rings, s.AcrossLinks, s.SwitchesRewired, s.BackupRoutes)
	if *routes {
		fmt.Println("backup routes (paper Table II, last two rows, per switch)")
		for _, r := range plan.Routes {
			fmt.Printf("  %-12s %-18v via %-12v port %2d (%s across)\n",
				tp.Node(r.Switch).Name, r.Prefix, r.Via, r.Port, r.Direction)
		}
	}
	return nil
}
