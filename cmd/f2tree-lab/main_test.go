package main

import "testing"

func TestRunCheapExperiments(t *testing.T) {
	for _, args := range [][]string{
		{"table1"},
		{"-n", "16", "table1"},
		{"table4"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunTestbedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed run")
	}
	if err := run([]string{"table3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"nonsense"},
		{"table1", "extra"},
		{"-badflag", "table1"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
