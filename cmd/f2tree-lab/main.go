// Command f2tree-lab runs the paper's experiments and prints the tables
// and figure series they produce.
//
// Usage:
//
//	f2tree-lab [flags] <experiment>
//
// Experiments: table1, fig2, table3, table4, fig4, fig5, fig6, fig7, all.
//
// The multi-run experiments (fig4, fig5, fig6) accept -parallel [-j N] to
// execute their runs on the campaign worker pool (internal/campaign) with
// byte-identical output — per-run seeds derive from the run specs, never
// from scheduling.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-lab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("f2tree-lab", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 42, "simulation seed")
		ports    = fs.Int("n", 8, "switch port count for table1")
		duration = fs.Duration("duration", 600*time.Second, "fig6 workload window")
		noBG     = fs.Bool("no-background", false, "fig6: skip background traffic")
		parallel = fs.Bool("parallel", false, "run multi-run experiments (fig4, fig5, fig6) on the campaign worker pool")
		workers  = fs.Int("j", runtime.GOMAXPROCS(0), "worker count for -parallel")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The campaign pool derives per-run seeds from the run specs, so
	// -parallel output is byte-identical to the serial path.
	runFig4 := func() (*exp.Fig4Results, error) {
		if *parallel {
			return campaign.RunFig4(*seed, campaign.Options{Parallelism: *workers})
		}
		return exp.RunFig4(*seed)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one experiment: table1, fig2, table3, table4, fig4, fig5, fig6, fig7, protocols, all")
	}
	name := fs.Arg(0)

	experiments := map[string]func() error{
		"table1": func() error {
			s, err := exp.Table1String(*ports)
			if err != nil {
				return err
			}
			fmt.Print(s)
			return nil
		},
		"table4": func() error {
			fmt.Print(exp.Table4String())
			return nil
		},
		"fig2": func() error {
			res, err := exp.RunFig2Table3(*seed)
			if err != nil {
				return err
			}
			fmt.Print(res.Fig2String())
			return nil
		},
		"table3": func() error {
			res, err := exp.RunFig2Table3(*seed)
			if err != nil {
				return err
			}
			fmt.Print(res.Table3String())
			return nil
		},
		"fig4": func() error {
			res, err := runFig4()
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		},
		"fig5": func() error {
			res, err := runFig4()
			if err != nil {
				return err
			}
			fmt.Print(res.Fig5String())
			return nil
		},
		"fig6": func() error {
			if *parallel {
				res, err := campaign.RunFig6(*seed, int(*duration/time.Millisecond), *noBG,
					campaign.Options{Parallelism: *workers})
				if err != nil {
					return err
				}
				fmt.Print(res.String())
				return nil
			}
			res, err := exp.RunFig6(*seed, exp.PAOptions{
				Duration:          sim.Time(*duration),
				DisableBackground: *noBG,
			})
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		},
		"fig7": func() error {
			res, err := exp.RunFig7(*seed)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		},
		"protocols": func() error {
			res, err := exp.RunProtocols(*seed)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		},
		"bisection": func() error {
			for _, scheme := range []exp.Scheme{exp.SchemeFatTree, exp.SchemeF2Tree} {
				res, err := exp.RunBisection(exp.BisectionOptions{Scheme: scheme, Ports: 8, Seed: *seed})
				if err != nil {
					return err
				}
				fmt.Println(res.Fmt())
			}
			fmt.Println("(absolute efficiency bounded by per-flow ECMP collisions on both fabrics; §II-D)")
			return nil
		},
		"sweep": func() error {
			det, err := exp.RunDetectionSweep(*seed)
			if err != nil {
				return err
			}
			fmt.Print(det.String())
			fib, err := exp.RunFIBSweep(*seed)
			if err != nil {
				return err
			}
			fmt.Print(fib.String())
			return nil
		},
	}
	if name == "all" {
		for _, n := range []string{"table1", "table4", "fig2", "table3", "fig4", "fig5", "fig6", "fig7", "protocols"} {
			fmt.Printf("==== %s ====\n", n)
			if err := experiments[n](); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Println()
		}
		return nil
	}
	fn, ok := experiments[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return fn()
}
