package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInput(t *testing.T) {
	var out, errw strings.Builder
	for _, args := range [][]string{
		{"-badflag"},
		{"extra-arg"},
	} {
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestBenchEmitsReport drives the full bench path — real HTTP on a
// loopback port, real simulations — and checks the acceptance gate: the
// repeated query is a measured cache hit in BENCH_serve.json.
func TestBenchEmitsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr strings.Builder
	if err := run([]string{"-bench", "-j", "2", "-bench-out", out}, &stdout, &stderr); err != nil {
		t.Fatalf("bench failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.RepeatCached {
		t.Fatalf("repeat not cached: %+v", rep)
	}
	if rep.RepeatSpeedup < 1 {
		t.Fatalf("repeat speedup %.2f < 1", rep.RepeatSpeedup)
	}
	if rep.Metrics.Hits < 1 || rep.Metrics.Failures != 0 {
		t.Fatalf("metrics = %+v", rep.Metrics)
	}
	if len(rep.Queries) != 4 || rep.BurstQueries != 8 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.Metrics.LatencyMs.Count != 12 || rep.Metrics.LatencyMs.P99 <= 0 {
		t.Fatalf("latency summary: %+v", rep.Metrics.LatencyMs)
	}
}

// TestBenchStoreWarmStart re-runs the bench against a persisted store: the
// second invocation must answer every repeatable query from the warm cache.
func TestBenchStoreWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	store := filepath.Join(dir, "cache.jsonl")
	out1 := filepath.Join(dir, "b1.json")
	out2 := filepath.Join(dir, "b2.json")
	var stdout, stderr strings.Builder
	if err := run([]string{"-bench", "-j", "2", "-store", store, "-bench-out", out1}, &stdout, &stderr); err != nil {
		t.Fatalf("first bench: %v\n%s", err, stderr.String())
	}
	stdout.Reset()
	if err := run([]string{"-bench", "-j", "2", "-store", store, "-bench-out", out2}, &stdout, &stderr); err != nil {
		t.Fatalf("second bench: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "warm start") {
		t.Fatalf("no warm-start banner:\n%s", stdout.String())
	}
	var rep benchReport
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	// Every non-burst query repeats a first-run query; all must hit.
	for _, q := range rep.Queries {
		if !q.Cached {
			t.Fatalf("query %s not served from warm cache: %+v", q.Label, rep.Queries)
		}
	}
}
