// Command f2tree-serve runs the what-if query service: a long-lived HTTP
// server answering "link (a,b) fails at t=X under workload W, scheme S —
// report the blackhole window, affected flows and recovery time" by
// simulating on demand. Queries multiplex over a worker pool with panic
// isolation and per-query timeouts; answers are memoized by the content
// hash of the canonical query, so repeats and concurrent duplicates cost
// one simulation (see internal/serve and DESIGN.md §13).
//
// Usage:
//
//	f2tree-serve [flags]
//
// Examples:
//
//	f2tree-serve -addr :8080 -j 4
//	f2tree-serve -addr :8080 -store serve-cache.jsonl   # warm-startable cache
//	f2tree-serve -bench                                 # emits BENCH_serve.json
//
//	curl -s localhost:8080/query -d '{"scheme":"f2tree","ports":6,
//	    "link":{"a":"tor-p0-0","b":"agg-p0-0"},"failAtMs":300}'
//	curl -s localhost:8080/metrics
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("f2tree-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "listen address")
		j       = fs.Int("j", runtime.GOMAXPROCS(0), "query workers")
		timeout = fs.Duration("timeout", 2*time.Minute, "wall-clock budget per query simulation (0 = none)")
		store   = fs.String("store", "", "JSONL memoization store (enables warm start; empty = memory-only)")

		bench    = fs.Bool("bench", false, "benchmark mode: start the server, drive the query set, emit a BENCH json and exit")
		benchOut = fs.String("bench-out", "BENCH_serve.json", "benchmark output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv, err := serve.NewServer(serve.Config{
		Workers: *j, Timeout: *timeout, StorePath: *store,
		Fingerprint: buildFingerprint(),
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	for _, w := range srv.Warnings() {
		fmt.Fprintln(stderr, "f2tree-serve: warning:", w)
	}
	if *store != "" {
		fmt.Fprintf(stdout, "f2tree-serve: cache schema %s\n", srv.Schema())
	}
	if n := srv.CacheLen(); n > 0 {
		fmt.Fprintf(stdout, "f2tree-serve: warm start with %d cached answers\n", n)
	}

	if *bench {
		return runBench(srv, stdout, *j, *benchOut)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "f2tree-serve: listening on http://%s (workers %d)\n", ln.Addr(), *j)
	return http.Serve(ln, srv.Handler())
}

// buildFingerprint resolves the cache-versioning fingerprint at startup.
// Run from a module checkout (the `go run` mode, where the executable is
// a transient build artifact), it hashes the Go sources via the
// go-list-free file walk, so the cache invalidates exactly when the
// simulator's code changes; deployed as a bare binary it hashes the
// executable itself.
func buildFingerprint() string {
	dir, err := os.Getwd()
	if err == nil {
		for d := dir; ; {
			if _, statErr := os.Stat(filepath.Join(d, "go.mod")); statErr == nil {
				if fp, fpErr := serve.FingerprintDir(d); fpErr == nil {
					return fp
				}
				break
			}
			parent := filepath.Dir(d)
			if parent == d {
				break
			}
			d = parent
		}
	}
	return serve.Fingerprint()
}

// benchQuery is one measured query of the bench report.
type benchQuery struct {
	Label     string  `json:"label"`
	MS        float64 `json:"ms"`
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced,omitempty"`
}

// benchReport is the BENCH_serve.json schema: per-query service latency
// over real HTTP, the repeat's measured cache hit and its speedup over the
// cold run, a concurrent-burst throughput figure, and the /metrics
// snapshot scraped at the end.
type benchReport struct {
	Bench      string       `json:"bench"`
	J          int          `json:"j"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Queries    []benchQuery `json:"queries"`
	// RepeatCached is the acceptance gate: the repeated query must be a
	// measured memoization hit.
	RepeatCached  bool    `json:"repeatCached"`
	RepeatSpeedup float64 `json:"repeatSpeedup"`
	// Burst drives the same query at distinct seeds concurrently.
	BurstQueries   int           `json:"burstQueries"`
	BurstSeconds   float64       `json:"burstSeconds"`
	BurstPerSecond float64       `json:"burstPerSecond"`
	Metrics        serve.Metrics `json:"metrics"`
}

// benchQueries is the driven query set: two whatif questions and one
// recovery question, then a repeat of the first.
func benchQueries() []struct {
	label string
	q     serve.Query
} {
	link := &serve.Link{A: "tor-p0-0", B: "agg-p0-0"}
	return []struct {
		label string
		q     serve.Query
	}{
		{"whatif-f2tree", serve.Query{Kind: serve.KindWhatIf, Scheme: "f2tree", Ports: 6, Link: link, Seed: 1}},
		{"whatif-fattree", serve.Query{Kind: serve.KindWhatIf, Scheme: "fattree", Ports: 4, Link: link, Seed: 1}},
		{"recovery-f2tree-c1", serve.Query{Kind: serve.KindRecovery, Scheme: "f2tree", Ports: 6, Condition: "C1", Seed: 42}},
		{"whatif-f2tree-repeat", serve.Query{Kind: serve.KindWhatIf, Scheme: "f2tree", Ports: 6, Link: link, Seed: 1}},
	}
}

func runBench(srv *serve.Server, stdout io.Writer, j int, outPath string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	post := func(q serve.Query) (serve.Response, float64, error) {
		b, err := json.Marshal(q)
		if err != nil {
			return serve.Response{}, 0, err
		}
		//f2tree:wallclock bench measures real HTTP service latency
		begin := time.Now()
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(b))
		if err != nil {
			return serve.Response{}, 0, err
		}
		defer resp.Body.Close()
		var out serve.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return serve.Response{}, 0, err
		}
		//f2tree:wallclock bench latency, paired with the Now above
		ms := float64(time.Since(begin)) / float64(time.Millisecond)
		if out.Error != "" {
			return out, ms, fmt.Errorf("query failed: %s", out.Error)
		}
		return out, ms, nil
	}

	rep := benchReport{Bench: "serve-whatif", J: j, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, bq := range benchQueries() {
		out, ms, err := post(bq.q)
		if err != nil {
			return fmt.Errorf("%s: %w", bq.label, err)
		}
		rep.Queries = append(rep.Queries, benchQuery{
			Label: bq.label, MS: ms, Cached: out.Cached, Coalesced: out.Coalesced,
		})
		fmt.Fprintf(stdout, "bench: %-22s %8.1f ms  cached=%v\n", bq.label, ms, out.Cached)
	}
	first, repeat := rep.Queries[0], rep.Queries[len(rep.Queries)-1]
	rep.RepeatCached = repeat.Cached
	if repeat.MS > 0 {
		rep.RepeatSpeedup = first.MS / repeat.MS
	}

	// Concurrent burst: the same what-if question at distinct seeds, all
	// in flight together, exercising pool occupancy end to end.
	const burst = 8
	var wg sync.WaitGroup
	errs := make([]error, burst)
	//f2tree:wallclock bench burst throughput measurement
	begin := time.Now()
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := serve.Query{
				Kind: serve.KindWhatIf, Scheme: "f2tree", Ports: 6,
				Link: &serve.Link{A: "tor-p0-0", B: "agg-p0-0"}, Seed: int64(100 + i),
			}
			_, _, errs[i] = post(q)
		}(i)
	}
	wg.Wait()
	//f2tree:wallclock bench burst throughput, paired with the Now above
	rep.BurstSeconds = time.Since(begin).Seconds()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("burst query %d: %w", i, err)
		}
	}
	rep.BurstQueries = burst
	if rep.BurstSeconds > 0 {
		rep.BurstPerSecond = float64(burst) / rep.BurstSeconds
	}
	fmt.Fprintf(stdout, "bench: burst of %d queries in %.2fs (%.1f/s)\n",
		burst, rep.BurstSeconds, rep.BurstPerSecond)

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&rep.Metrics); err != nil {
		return err
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bench: hit rate %.2f, latency p50 %.1f ms p99 %.1f ms → %s\n",
		rep.Metrics.CacheHitRate, rep.Metrics.LatencyMs.P50, rep.Metrics.LatencyMs.P99, outPath)
	if !rep.RepeatCached {
		return fmt.Errorf("repeated query was not served from cache — memoization regression")
	}
	return nil
}
