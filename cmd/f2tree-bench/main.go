// Command f2tree-bench measures the simulator's hot path — event
// scheduling, packet forwarding, FIB lookup (hit, fallback and cached) and
// the end-to-end Fig 4 regeneration — and emits BENCH_hotpath.json with the
// committed pre-optimization baseline alongside the freshly measured
// numbers.
//
// Usage:
//
//	f2tree-bench -out BENCH_hotpath.json            # full run
//	f2tree-bench -check -benchtime 100ms -fig4=false # CI smoke + budget gate
//
// With -check the command exits non-zero if any benchmark's allocs/op
// exceeds its committed budget, or if the packet-forwarding benchmark no
// longer shows a ≥2× allocation reduction over the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/fib"
	"repro/internal/netaddr"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topo"
)

// benchResult is one benchmark's measured figures.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// snapshot is one side (baseline or current) of the report.
type snapshot struct {
	Note        string                 `json:"note"`
	Benchmarks  map[string]benchResult `json:"benchmarks"`
	Fig4Seconds float64                `json:"fig4_seconds,omitempty"`
}

// report is the BENCH_hotpath.json schema.
type report struct {
	Bench              string             `json:"bench"`
	GoVersion          string             `json:"go"`
	GOMAXPROCS         int                `json:"gomaxprocs"`
	BudgetsAllocsPerOp map[string]int64   `json:"budgets_allocs_per_op"`
	Baseline           snapshot           `json:"baseline"`
	Current            snapshot           `json:"current"`
	Speedup            map[string]float64 `json:"speedup"`
}

// budgets are the committed allocs/op ceilings CI enforces on the core
// hot-path benchmarks. Raising one is an explicit, reviewed decision.
var budgets = map[string]int64{
	"sim_schedule":        0,
	"sim_cancel":          0,
	"net_forward":         1,
	"fib_lookup_hit":      0,
	"fib_lookup_fallback": 0,
	"fib_lookup_cached":   0,
}

// baseline is the pre-optimization measurement (PR 3 seed: container/heap
// event queue, per-hop closures, unpooled packets, 33-length FIB scan),
// recorded on the same class of machine CI baselines come from. It is
// deliberately a compile-time constant: the "before" in every before/after
// this tool prints.
var baseline = snapshot{
	Note: "pre-optimization (container/heap event queue, per-hop closures, unpooled packets, full 0..32 FIB scan); Intel Xeon 2.10GHz, go1.24, GOMAXPROCS=1",
	Benchmarks: map[string]benchResult{
		"sim_schedule":        {NsPerOp: 53.07, AllocsPerOp: 1, BytesPerOp: 32},
		"sim_cancel":          {NsPerOp: 56.42, AllocsPerOp: 1, BytesPerOp: 32},
		"net_forward":         {NsPerOp: 1007, AllocsPerOp: 15, BytesPerOp: 640},
		"fib_lookup_hit":      {NsPerOp: 79.11, AllocsPerOp: 0, BytesPerOp: 0},
		"fib_lookup_fallback": {NsPerOp: 148.0, AllocsPerOp: 0, BytesPerOp: 0},
		// The cached lookup path did not exist pre-optimization; its
		// baseline is the uncached hit it replaces.
		"fib_lookup_cached": {NsPerOp: 79.11, AllocsPerOp: 0, BytesPerOp: 0},
	},
	Fig4Seconds: 4.517,
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f2tree-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("f2tree-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", "BENCH_hotpath.json", "output JSON file (empty = stdout only)")
		check     = fs.Bool("check", false, "enforce the committed allocs/op budgets; non-zero exit on regression")
		benchtime = fs.Duration("benchtime", time.Second, "target time per benchmark")
		withFig4  = fs.Bool("fig4", true, "include the end-to-end fig4 regeneration timing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	// testing.Benchmark honours the test.benchtime flag; register the
	// testing flags and set it so -benchtime works outside `go test`.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}

	cur := snapshot{
		Note:       fmt.Sprintf("measured by f2tree-bench, %s, GOMAXPROCS=%d", runtime.Version(), runtime.GOMAXPROCS(0)),
		Benchmarks: map[string]benchResult{},
	}
	for _, b := range hotpathBenchmarks() {
		fmt.Fprintf(stderr, "bench %-19s ... ", b.name)
		res := measure(b.fn)
		cur.Benchmarks[b.name] = res
		fmt.Fprintf(stderr, "%10.1f ns/op  %3d allocs/op  %5d B/op\n",
			res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	if *withFig4 {
		fmt.Fprintf(stderr, "bench %-19s ... ", "fig4_e2e")
		begin := time.Now() //f2tree:wallclock measures the real runtime of the simulator itself, by design
		if _, err := exp.RunFig4(42); err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		cur.Fig4Seconds = math.Round(time.Since(begin).Seconds()*1000) / 1000 //f2tree:wallclock paired with the Now above
		fmt.Fprintf(stderr, "%10.2f s\n", cur.Fig4Seconds)
	}

	rep := report{
		Bench:              "hotpath",
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		BudgetsAllocsPerOp: budgets,
		Baseline:           baseline,
		Current:            cur,
		Speedup:            map[string]float64{},
	}
	//f2tree:unordered per-key writes into a map that is rendered as sorted JSON
	for name, b := range baseline.Benchmarks {
		if c, ok := cur.Benchmarks[name]; ok && c.NsPerOp > 0 {
			rep.Speedup[name] = round2(b.NsPerOp / c.NsPerOp)
		}
	}
	if cur.Fig4Seconds > 0 {
		rep.Speedup["fig4_e2e"] = round2(baseline.Fig4Seconds / cur.Fig4Seconds)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	} else {
		stdout.Write(buf)
	}

	if *check {
		return enforce(stdout, cur)
	}
	return nil
}

// enforce applies the committed budgets to a measured snapshot.
func enforce(w io.Writer, cur snapshot) error {
	var failed int
	for _, b := range hotpathBenchmarks() {
		res, ok := cur.Benchmarks[b.name]
		if !ok {
			continue
		}
		budget := budgets[b.name]
		status := "ok"
		if res.AllocsPerOp > budget {
			status = "REGRESSION"
			failed++
		}
		fmt.Fprintf(w, "check %-19s allocs/op %3d (budget %d) %s\n", b.name, res.AllocsPerOp, budget, status)
	}
	base := baseline.Benchmarks["net_forward"].AllocsPerOp
	if cur.Benchmarks["net_forward"].AllocsPerOp*2 > base {
		failed++
		fmt.Fprintf(w, "check net_forward 2x-reduction vs baseline (%d) FAILED\n", base)
	}
	if failed > 0 {
		return fmt.Errorf("%d allocs/op budget check(s) failed", failed)
	}
	fmt.Fprintln(w, "all allocs/op budgets hold")
	return nil
}

// measure runs fn under the standard benchmark harness.
func measure(fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		NsPerOp:     round2(float64(r.T.Nanoseconds()) / float64(r.N)),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// round2 keeps the committed JSON readable (two decimals are already below
// run-to-run noise).
func round2(x float64) float64 { return math.Round(x*100) / 100 }

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// hotpathBenchmarks defines the core hot-path suite; the names are the keys
// of the committed budgets and of both JSON snapshots.
func hotpathBenchmarks() []namedBench {
	return []namedBench{
		{"sim_schedule", benchSimSchedule},
		{"sim_cancel", benchSimCancel},
		{"net_forward", benchNetForward},
		{"fib_lookup_hit", benchFibLookupHit},
		{"fib_lookup_fallback", benchFibLookupFallback},
		{"fib_lookup_cached", benchFibLookupCached},
	}
}

// benchSimSchedule mirrors sim.BenchmarkScheduleAndRun: a self-rescheduling
// event chain, the pattern of per-hop forwarding.
func benchSimSchedule(b *testing.B) {
	s := sim.New(1)
	remaining := b.N
	var tick sim.Event
	tick = func(now sim.Time) {
		if remaining <= 0 {
			return
		}
		remaining--
		s.After(time.Microsecond, tick)
	}
	s.After(time.Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}

// benchSimCancel is the timer-churn pattern (TCP retransmit restart).
func benchSimCancel(b *testing.B) {
	s := sim.New(1)
	// Warm the item pool so steady-state churn is measured.
	s.Cancel(s.After(time.Second, func(sim.Time) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cancel(s.After(time.Second, func(sim.Time) {}))
	}
}

// forwardChain builds the same static-routed 3-switch chain as the
// internal/network benchmark: host a → tor1 → agg → tor2 → host b.
func forwardChain() (*sim.Simulator, *network.Network, topo.NodeID, netaddr.Addr, error) {
	tp := topo.NewTopology("chain")
	t1 := tp.AddNode(topo.Node{Name: "tor1", Kind: topo.ToR, NumPorts: 4,
		Addr: netaddr.MustParseAddr("10.12.0.1"), Subnet: netaddr.MustParsePrefix("10.11.0.0/24")})
	ag := tp.AddNode(topo.Node{Name: "agg", Kind: topo.Agg, NumPorts: 4,
		Addr: netaddr.MustParseAddr("10.12.0.2")})
	t2 := tp.AddNode(topo.Node{Name: "tor2", Kind: topo.ToR, NumPorts: 4,
		Addr: netaddr.MustParseAddr("10.12.0.3"), Subnet: netaddr.MustParsePrefix("10.11.1.0/24")})
	a := tp.AddNode(topo.Node{Name: "a", Kind: topo.Host, NumPorts: 1,
		Addr: netaddr.MustParseAddr("10.11.0.2")})
	bh := tp.AddNode(topo.Node{Name: "b", Kind: topo.Host, NumPorts: 1,
		Addr: netaddr.MustParseAddr("10.11.1.2")})
	for _, pair := range [][2]topo.NodeID{{a, t1}, {bh, t2}} {
		if _, err := tp.AddLink(pair[0], pair[1], topo.HostLink); err != nil {
			return nil, nil, 0, 0, err
		}
	}
	l1, err := tp.AddLink(t1, ag, topo.EdgeLink)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	l2, err := tp.AddLink(ag, t2, topo.EdgeLink)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	s := sim.New(1)
	nw, err := network.New(s, tp, network.Config{})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	dstNet := netaddr.MustParsePrefix("10.11.1.0/24")
	p1, _ := tp.Link(l1).PortOf(t1)
	if err := nw.Table(t1).Add(fib.Route{Prefix: dstNet, Source: fib.Static,
		NextHops: []fib.NextHop{{Port: p1, Via: tp.Node(ag).Addr}}}); err != nil {
		return nil, nil, 0, 0, err
	}
	p2, _ := tp.Link(l2).PortOf(ag)
	if err := nw.Table(ag).Add(fib.Route{Prefix: dstNet, Source: fib.Static,
		NextHops: []fib.NextHop{{Port: p2, Via: tp.Node(t2).Addr}}}); err != nil {
		return nil, nil, 0, 0, err
	}
	return s, nw, a, tp.Node(bh).Addr, nil
}

// benchNetForward is the packet-forwarding benchmark the ≥2× allocation
// reduction is gated on: one op forwards one packet across three switch
// hops end to end.
func benchNetForward(b *testing.B) {
	s, nw, a, dst, err := forwardChain()
	if err != nil {
		b.Fatal(err)
	}
	flow := fib.FlowKey{Src: netaddr.MustParseAddr("10.11.0.2"), Dst: dst,
		Proto: network.ProtoUDP, SrcPort: 40000, DstPort: 9}
	send := func() {
		pkt := nw.NewPacket()
		pkt.Flow, pkt.Size = flow, 1488
		nw.SendFromHost(a, pkt)
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ { // warm the pools outside the timed region
		send()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
}

// fibTable builds the route mix of an F²Tree switch at the k=24 scale: 242
// OSPF /24s plus the two static backup routes.
func fibTable(b *testing.B) *fib.Table {
	tbl := fib.New()
	for i := 0; i < 242; i++ {
		p, err := netaddr.PrefixFrom(netaddr.AddrFrom4(10, 11, byte(i), 0), 24)
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Add(fib.Route{Prefix: p, Source: fib.OSPF,
			NextHops: []fib.NextHop{{Port: i % 4}, {Port: (i + 1) % 4}}}); err != nil {
			b.Fatal(err)
		}
	}
	for i, spec := range []string{"10.11.0.0/16", "10.10.0.0/15"} {
		if err := tbl.Add(fib.Route{Prefix: netaddr.MustParsePrefix(spec), Source: fib.Static,
			NextHops: []fib.NextHop{{Port: 10 + i}}}); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func benchFibLookupHit(b *testing.B) {
	tbl := fibTable(b)
	dst := netaddr.AddrFrom4(10, 11, 121, 9)
	flow := fib.FlowKey{Src: 1, Dst: dst, Proto: 17, SrcPort: 9, DstPort: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(dst, flow, nil); !ok {
			b.Fatal("miss")
		}
	}
}

func benchFibLookupFallback(b *testing.B) {
	tbl := fibTable(b)
	dst := netaddr.AddrFrom4(10, 11, 9, 9)
	flow := fib.FlowKey{Src: 1, Dst: dst, Proto: 17, SrcPort: 9, DstPort: 9}
	usable := func(nh fib.NextHop) bool { return nh.Port >= 10 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, ok := tbl.Lookup(dst, flow, usable)
		if !ok || res.NextHop.Port < 10 {
			b.Fatal("fallback failed")
		}
	}
}

func benchFibLookupCached(b *testing.B) {
	tbl := fibTable(b)
	tbl.EnableFlowCache(0)
	dst := netaddr.AddrFrom4(10, 11, 121, 9)
	flow := fib.FlowKey{Src: 1, Dst: dst, Proto: 17, SrcPort: 9, DstPort: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(dst, flow, nil); !ok {
			b.Fatal("miss")
		}
	}
}
