package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunEmitsValidReport exercises the full tool (minus the multi-second
// fig4 run) with a tiny benchtime and checks the emitted JSON is complete
// and the budget gate passes on the current code.
func TestRunEmitsValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run([]string{"-out", out, "-benchtime", "10ms", "-fig4=false", "-check"},
		&stdout, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Bench != "hotpath" {
		t.Errorf("bench = %q, want hotpath", rep.Bench)
	}
	for _, b := range hotpathBenchmarks() {
		cur, ok := rep.Current.Benchmarks[b.name]
		if !ok {
			t.Fatalf("missing current benchmark %q", b.name)
		}
		if cur.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %v, want > 0", b.name, cur.NsPerOp)
		}
		if _, ok := rep.BudgetsAllocsPerOp[b.name]; !ok {
			t.Errorf("%s: no committed allocs/op budget", b.name)
		}
		if _, ok := rep.Baseline.Benchmarks[b.name]; !ok {
			t.Errorf("%s: no baseline entry", b.name)
		}
	}
	if _, ok := rep.Speedup["net_forward"]; !ok {
		t.Error("missing net_forward speedup")
	}
}

// TestEnforceFlagsRegression verifies the gate actually fails when a
// snapshot exceeds a budget.
func TestEnforceFlagsRegression(t *testing.T) {
	bad := snapshot{Benchmarks: map[string]benchResult{}}
	for name := range budgets {
		bad.Benchmarks[name] = benchResult{NsPerOp: 1, AllocsPerOp: budgets[name] + 1}
	}
	var out bytes.Buffer
	if err := enforce(&out, bad); err == nil {
		t.Fatalf("enforce accepted a snapshot over budget:\n%s", out.String())
	}
	good := snapshot{Benchmarks: map[string]benchResult{}}
	for name := range budgets {
		good.Benchmarks[name] = benchResult{NsPerOp: 1, AllocsPerOp: 0}
	}
	out.Reset()
	if err := enforce(&out, good); err != nil {
		t.Fatalf("enforce rejected an in-budget snapshot: %v\n%s", err, out.String())
	}
}
