// Command f2tree-vet is the repository's determinism and concurrency
// static-analysis gate. It runs the stock `go vet` passes and then the
// three custom analyzers from internal/analysis — mapiter, simclock and
// lockcheck — over the simulation/routing packages, and exits non-zero on
// any finding. CI runs it between `go vet` and the race-enabled tests:
//
//	go run ./cmd/f2tree-vet ./...
//
// Flags:
//
//	-novet   skip the stock go vet passes (custom analyzers only)
//	-list    print the analyzers and the in-scope packages, then exit
//	-v       report each package as it is analyzed
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("f2tree-vet", flag.ContinueOnError)
	novet := fs.Bool("novet", false, "skip the stock go vet passes")
	list := fs.Bool("list", false, "list analyzers and in-scope packages, then exit")
	all := fs.Bool("all", false, "run the determinism analyzers on every listed package, not just the in-scope ones")
	verbose := fs.Bool("v", false, "report each package as it is analyzed")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: f2tree-vet [flags] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs go vet plus the determinism analyzers (mapiter, simclock, lockcheck)\n")
		fmt.Fprintf(fs.Output(), "over the simulation/routing packages. Default package pattern: ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *list {
		fmt.Println("analyzers:")
		for _, a := range analysis.Analyzers() {
			fmt.Printf("  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Println("in-scope packages:")
		for _, p := range analysis.ScopedPackages() {
			fmt.Printf("  %s\n", p)
		}
		return 0
	}

	failed := false

	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, isExit := err.(*exec.ExitError); !isExit {
				fmt.Fprintf(os.Stderr, "f2tree-vet: running go vet: %v\n", err)
				return 2
			}
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2tree-vet: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		if !*all && !analysis.InScope(pkg.ImportPath) {
			continue
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "f2tree-vet: analyzing %s\n", pkg.ImportPath)
		}
		for _, a := range analysis.Analyzers() {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "f2tree-vet: %s: %v\n", pkg.ImportPath, err)
				return 2
			}
			for _, d := range diags {
				fmt.Printf("%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "f2tree-vet: %d finding(s)\n", findings)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}
