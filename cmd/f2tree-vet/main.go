// Command f2tree-vet is the repository's determinism, contract and
// lifecycle static-analysis gate. It runs the stock `go vet` passes and
// then the custom analyzers from internal/analysis — mapiter, simclock,
// lockcheck, poolcheck, hotpathalloc, epochcheck and handlecheck — over
// the simulation, routing and command packages, and exits non-zero on any
// finding. CI runs it between `go vet` and the race-enabled tests:
//
//	go run ./cmd/f2tree-vet ./...
//
// Flags:
//
//	-novet   skip the stock go vet passes (custom analyzers only)
//	-list    print the analyzers and the in-scope packages, then exit
//	-all     lift the scope filter (analyze every matched package)
//	-json    emit findings (or the -audit inventory) as JSON on stdout
//	-audit   inventory every //f2tree: directive and fail on stale
//	         suppressions, unknown verbs and missing justifications
//	-v       report each package as it is analyzed
//
// Exit codes: 0 clean, 1 findings (or audit defects), 2 operational
// error — including a package pattern that matches nothing in scope, so a
// typo'd pattern cannot masquerade as a clean run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Package  string `json:"package"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output for a normal (non-audit) run.
type jsonReport struct {
	Findings []finding `json:"findings"`
	Count    int       `json:"count"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("f2tree-vet", flag.ContinueOnError)
	novet := fs.Bool("novet", false, "skip the stock go vet passes")
	list := fs.Bool("list", false, "list analyzers and in-scope packages, then exit")
	all := fs.Bool("all", false, "run the analyzers on every listed package, not just the in-scope ones")
	jsonOut := fs.Bool("json", false, "emit findings (or the audit inventory) as JSON on stdout")
	audit := fs.Bool("audit", false, "audit //f2tree: directives instead of reporting findings")
	verbose := fs.Bool("v", false, "report each package as it is analyzed")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: f2tree-vet [flags] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs go vet plus the determinism/contract analyzers (mapiter, simclock,\n")
		fmt.Fprintf(fs.Output(), "lockcheck, poolcheck, hotpathalloc, epochcheck, handlecheck) over the\n")
		fmt.Fprintf(fs.Output(), "simulation, routing and command packages. Default package pattern: ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *list {
		fmt.Println("analyzers:")
		for _, a := range analysis.Analyzers() {
			fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Println("in-scope packages:")
		for _, p := range analysis.ScopedPackages() {
			fmt.Printf("  %s\n", p)
		}
		return 0
	}

	failed := false

	if !*novet && !*audit {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, isExit := err.(*exec.ExitError); !isExit {
				fmt.Fprintf(os.Stderr, "f2tree-vet: running go vet: %v\n", err)
				return 2
			}
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2tree-vet: %v\n", err)
		return 2
	}
	var scoped []*analysis.Package
	for _, pkg := range pkgs {
		if *all || analysis.InScope(pkg.ImportPath) {
			scoped = append(scoped, pkg)
		}
	}
	if len(scoped) == 0 {
		fmt.Fprintf(os.Stderr,
			"f2tree-vet: no packages to analyze: %v matched %d package(s), none in scope (use -all to lift the scope filter, -list to see it)\n",
			patterns, len(pkgs))
		return 2
	}

	if *audit {
		return runAudit(scoped, *jsonOut)
	}

	var report jsonReport
	for _, pkg := range scoped {
		if *verbose {
			fmt.Fprintf(os.Stderr, "f2tree-vet: analyzing %s\n", pkg.ImportPath)
		}
		for _, a := range analysis.Analyzers() {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "f2tree-vet: %s: %v\n", pkg.ImportPath, err)
				return 2
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if *jsonOut {
					report.Findings = append(report.Findings, finding{
						File:     pos.Filename,
						Line:     pos.Line,
						Column:   pos.Column,
						Package:  pkg.ImportPath,
						Analyzer: d.Analyzer,
						Message:  d.Message,
					})
				} else {
					fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
				}
				report.Count++
			}
		}
	}
	if *jsonOut {
		report.Findings = nonNil(report.Findings)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "f2tree-vet: encoding JSON: %v\n", err)
			return 2
		}
	}
	if report.Count > 0 {
		fmt.Fprintf(os.Stderr, "f2tree-vet: %d finding(s)\n", report.Count)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// runAudit inventories the //f2tree: directives of the scoped packages
// and fails on stale suppressions, unknown verbs and suppressions with no
// justification.
func runAudit(pkgs []*analysis.Package, jsonOut bool) int {
	res, err := analysis.Audit(pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2tree-vet: audit: %v\n", err)
		return 2
	}
	if jsonOut {
		res.Directives = nonNil(res.Directives)
		res.Stale = nonNil(res.Stale)
		res.Unknown = nonNil(res.Unknown)
		res.Unjustified = nonNil(res.Unjustified)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "f2tree-vet: encoding JSON: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Directives {
			fmt.Printf("%s\n", d.Describe())
		}
		for _, d := range res.Stale {
			fmt.Fprintf(os.Stderr, "f2tree-vet: stale suppression (no %s finding on its line): %s\n", d.Analyzer, d.Describe())
		}
		for _, d := range res.Unknown {
			fmt.Fprintf(os.Stderr, "f2tree-vet: unknown directive verb %q: %s\n", d.Verb, d.Describe())
		}
		for _, d := range res.Unjustified {
			fmt.Fprintf(os.Stderr, "f2tree-vet: suppression without a reason: %s\n", d.Describe())
		}
	}
	if !res.Clean() {
		fmt.Fprintf(os.Stderr, "f2tree-vet: audit: %d stale, %d unknown, %d unjustified directive(s)\n",
			len(res.Stale), len(res.Unknown), len(res.Unjustified))
		return 1
	}
	fmt.Fprintf(os.Stderr, "f2tree-vet: audit: %d directive(s), all live and justified\n", len(res.Directives))
	return 0
}

// nonNil keeps JSON output stable: empty lists encode as [], not null.
func nonNil[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}
