// Command f2tree-vet is the repository's determinism, contract and
// concurrency static-analysis gate. It runs the stock `go vet` passes and
// then the custom analyzers from internal/analysis — mapiter, simclock,
// lockcheck, poolcheck, hotpathalloc, epochcheck, handlecheck, shardcheck,
// plus the CFG-backed concurrency four: lockorder, goleak, chanblock and
// wgcheck — over every non-test package in the module, and exits
// non-zero on any finding. Packages are analyzed in parallel dependency
// order: each package runs only after its dependencies, so the facts they
// export (allocates-on-steady-path, reads-wall-clock, shardlocal, ...)
// are complete when its pass starts, making the analyzers transitive
// across package boundaries. CI runs it between `go vet` and the
// race-enabled tests:
//
//	go run ./cmd/f2tree-vet ./...
//
// Flags:
//
//	-novet       skip the stock go vet passes (custom analyzers only)
//	-list        print the analyzers and the in-scope packages, then exit
//	-all         lift the scope filter (analyze every matched package)
//	-json        emit findings (or the -audit inventory) as JSON on stdout
//	-audit       inventory every //f2tree: directive and fail on stale
//	             suppressions, unknown verbs and missing justifications
//	-j N         analysis parallelism (0 = GOMAXPROCS); results are
//	             byte-identical at any setting
//	-cachedir D  result-cache directory (default os.UserCacheDir()/f2tree-vet)
//	-nocache     disable the result cache
//	-v           report each package as it is analyzed, plus cache stats
//
// Results are cached per package under a content hash covering the
// package's source bytes, the analyzer set, the mode flags and the facts
// of every transitive dependency — editing an upstream annotation
// invalidates every downstream entry, and a warm run replays findings
// byte-identically.
//
// Exit codes: 0 clean, 1 findings (or audit defects), 2 operational
// error — including a package pattern that matches nothing in scope, so a
// typo'd pattern cannot masquerade as a clean run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonReport is the -json output for a normal (non-audit) run: the flat
// finding list plus each package's exported facts (the whole-program
// inventory downstream tooling consumes).
type jsonReport struct {
	Findings []analysis.Finding         `json:"findings"`
	Count    int                        `json:"count"`
	Facts    map[string][]analysis.Fact `json:"facts"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("f2tree-vet", flag.ContinueOnError)
	novet := fs.Bool("novet", false, "skip the stock go vet passes")
	list := fs.Bool("list", false, "list analyzers and in-scope packages, then exit")
	all := fs.Bool("all", false, "run the analyzers on every listed package, not just the in-scope ones")
	jsonOut := fs.Bool("json", false, "emit findings (or the audit inventory) as JSON on stdout")
	audit := fs.Bool("audit", false, "audit //f2tree: directives instead of reporting findings")
	workers := fs.Int("j", 0, "analysis parallelism (0 = GOMAXPROCS)")
	cacheDir := fs.String("cachedir", "", "result-cache directory (default: user cache dir)")
	noCache := fs.Bool("nocache", false, "disable the per-package result cache")
	verbose := fs.Bool("v", false, "report each package as it is analyzed, plus cache stats")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: f2tree-vet [flags] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs go vet plus the determinism/contract/concurrency analyzers (mapiter,\n")
		fmt.Fprintf(fs.Output(), "simclock, lockcheck, poolcheck, hotpathalloc, epochcheck, handlecheck,\n")
		fmt.Fprintf(fs.Output(), "shardcheck, lockorder, goleak, chanblock, wgcheck)\n")
		fmt.Fprintf(fs.Output(), "in parallel dependency order with cross-package fact propagation.\n")
		fmt.Fprintf(fs.Output(), "Default package pattern: ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *list {
		fmt.Println("analyzers:")
		for _, a := range analysis.Analyzers() {
			fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Println("in-scope packages:")
		for _, p := range analysis.ScopedPackages() {
			fmt.Printf("  %s\n", p)
		}
		return 0
	}

	failed := false

	if !*novet && !*audit {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, isExit := err.(*exec.ExitError); !isExit {
				fmt.Fprintf(os.Stderr, "f2tree-vet: running go vet: %v\n", err)
				return 2
			}
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2tree-vet: %v\n", err)
		return 2
	}
	inScope := func(path string) bool { return *all || analysis.InScope(path) }
	scoped := 0
	for _, pkg := range pkgs {
		if !pkg.DepOnly && inScope(pkg.ImportPath) {
			scoped++
		}
	}
	if scoped == 0 {
		fmt.Fprintf(os.Stderr,
			"f2tree-vet: no packages to analyze: %v matched %d package(s), none in scope (use -all to lift the scope filter, -list to see it)\n",
			patterns, len(pkgs))
		return 2
	}

	var disk *analysis.DiskCache
	var cache analysis.Cache
	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			dir = analysis.DefaultCacheDir()
		}
		if dir != "" {
			disk = &analysis.DiskCache{Dir: dir}
			cache = disk
		}
	}
	opt := analysis.RunOptions{InScope: inScope, Workers: *workers, Cache: cache}

	if *audit {
		return runAudit(pkgs, opt, *jsonOut)
	}

	results, err := analysis.RunGraph(pkgs, analysis.Analyzers(), opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2tree-vet: %v\n", err)
		return 2
	}

	report := jsonReport{Facts: make(map[string][]analysis.Fact)}
	for _, r := range results {
		if *verbose {
			status := "analyzed"
			if r.CacheHit {
				status = "cached"
			}
			fmt.Fprintf(os.Stderr, "f2tree-vet: %s %s\n", status, r.ImportPath)
		}
		if len(r.Facts) > 0 {
			report.Facts[r.ImportPath] = r.Facts
		}
		for _, f := range r.Findings {
			if *jsonOut {
				report.Findings = append(report.Findings, f)
			} else {
				fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
			}
			report.Count++
		}
	}
	if *jsonOut {
		report.Findings = nonNil(report.Findings)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "f2tree-vet: encoding JSON: %v\n", err)
			return 2
		}
	}
	if disk != nil {
		fmt.Fprintf(os.Stderr, "f2tree-vet: cache: %s\n", disk.Summary())
	}
	if report.Count > 0 {
		fmt.Fprintf(os.Stderr, "f2tree-vet: %d finding(s)\n", report.Count)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// runAudit inventories the //f2tree: directives of the in-scope packages
// and fails on stale suppressions, unknown verbs and suppressions with no
// justification. The audit re-runs the analyzers through the same graph
// driver with suppression disabled, so an interprocedural finding (a
// shardport seam, a transitive wallclock call) keeps its directive live.
func runAudit(pkgs []*analysis.Package, opt analysis.RunOptions, jsonOut bool) int {
	res, err := analysis.Audit(pkgs, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2tree-vet: audit: %v\n", err)
		return 2
	}
	if jsonOut {
		res.Directives = nonNil(res.Directives)
		res.Stale = nonNil(res.Stale)
		res.Unknown = nonNil(res.Unknown)
		res.Unjustified = nonNil(res.Unjustified)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "f2tree-vet: encoding JSON: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Directives {
			fmt.Printf("%s\n", d.Describe())
		}
		for _, d := range res.Stale {
			fmt.Fprintf(os.Stderr, "f2tree-vet: stale suppression (no %s finding on its line): %s\n", d.Analyzer, d.Describe())
		}
		for _, d := range res.Unknown {
			fmt.Fprintf(os.Stderr, "f2tree-vet: unknown directive verb %q: %s\n", d.Verb, d.Describe())
		}
		for _, d := range res.Unjustified {
			fmt.Fprintf(os.Stderr, "f2tree-vet: suppression without a reason: %s\n", d.Describe())
		}
	}
	if !res.Clean() {
		fmt.Fprintf(os.Stderr, "f2tree-vet: audit: %d stale, %d unknown, %d unjustified directive(s)\n",
			len(res.Stale), len(res.Unknown), len(res.Unjustified))
		return 1
	}
	fmt.Fprintf(os.Stderr, "f2tree-vet: audit: %d directive(s), all live and justified\n", len(res.Directives))
	return 0
}

// nonNil keeps JSON output stable: empty lists encode as [], not null.
func nonNil[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}
