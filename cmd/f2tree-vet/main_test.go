package main

import "testing"

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("run(-list) = %d, want 0", code)
	}
}

func TestCleanPackagesPass(t *testing.T) {
	args := []string{"-novet", "repro/internal/sim", "repro/internal/fib", "repro/internal/detsort"}
	if code := run(args); code != 0 {
		t.Errorf("run(%v) = %d, want 0", args, code)
	}
}

func TestDetectsViolations(t *testing.T) {
	// The analyzer fixtures double as end-to-end violation corpora: with
	// -all the scope filter is lifted and each must fail the gate.
	for _, dir := range []string{
		"../../internal/analysis/testdata/src/mapiter",
		"../../internal/analysis/testdata/src/simclock",
		"../../internal/analysis/testdata/src/lockcheck",
	} {
		args := []string{"-novet", "-all", dir}
		if code := run(args); code != 1 {
			t.Errorf("run(%v) = %d, want 1", args, code)
		}
	}
}

func TestBadPatternFails(t *testing.T) {
	if code := run([]string{"-novet", "repro/internal/nosuchpackage"}); code != 2 {
		t.Errorf("run on missing package = %d, want 2", code)
	}
}
