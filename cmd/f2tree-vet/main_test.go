package main

import (
	"encoding/json"
	"io"
	"os"
	"testing"

	"repro/internal/analysis"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote. run() prints findings and JSON to the real stdout, so the
// output-shape tests need the redirect.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	saved := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = saved }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("reading captured stdout: %v", err)
	}
	return string(out)
}

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("run(-list) = %d, want 0", code)
	}
}

func TestCleanPackagesPass(t *testing.T) {
	args := []string{"-novet", "repro/internal/sim", "repro/internal/fib", "repro/internal/detsort"}
	if code := run(args); code != 0 {
		t.Errorf("run(%v) = %d, want 0", args, code)
	}
}

func TestDetectsViolations(t *testing.T) {
	// The analyzer fixtures double as end-to-end violation corpora: with
	// -all the scope filter is lifted and each must fail the gate.
	for _, dir := range []string{
		"../../internal/analysis/testdata/src/mapiter",
		"../../internal/analysis/testdata/src/simclock",
		"../../internal/analysis/testdata/src/lockcheck",
		"../../internal/analysis/testdata/src/poolcheck",
		"../../internal/analysis/testdata/src/hotpathalloc",
		"../../internal/analysis/testdata/src/epochcheck",
		"../../internal/analysis/testdata/src/handlecheck",
		"../../internal/analysis/testdata/src/shardcheck",
	} {
		args := []string{"-novet", "-all", dir}
		if code := run(args); code != 1 {
			t.Errorf("run(%v) = %d, want 1", args, code)
		}
	}
}

func TestBadPatternFails(t *testing.T) {
	if code := run([]string{"-novet", "repro/internal/nosuchpackage"}); code != 2 {
		t.Errorf("run on missing package = %d, want 2", code)
	}
}

func TestNoScopedPackagesFails(t *testing.T) {
	// The fixture package loads fine but is not in scope; without -all a
	// run that analyzes nothing must not masquerade as a clean one.
	args := []string{"-novet", "../../internal/analysis/testdata/src/mapiter"}
	if code := run(args); code != 2 {
		t.Errorf("run(%v) = %d, want 2 (zero packages in scope)", args, code)
	}
}

func TestJSONFindings(t *testing.T) {
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-novet", "-all", "-json", "../../internal/analysis/testdata/src/mapiter"})
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if rep.Count == 0 || len(rep.Findings) != rep.Count {
		t.Fatalf("count = %d with %d findings, want a consistent non-zero report", rep.Count, len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
		t.Errorf("finding fields incomplete: %+v", f)
	}
}

func TestJSONCleanEmitsEmptyList(t *testing.T) {
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-novet", "-json", "repro/internal/detsort"})
	})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var rep struct {
		Findings json.RawMessage `json:"findings"`
		Count    int             `json:"count"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if string(rep.Findings) == "null" {
		t.Error("clean report encodes findings as null, want []")
	}
	if rep.Count != 0 {
		t.Errorf("count = %d, want 0", rep.Count)
	}
}

func TestAuditCleanPackages(t *testing.T) {
	args := []string{"-audit", "repro/internal/sim", "repro/internal/fib", "repro/internal/detsort"}
	var code int
	out := captureStdout(t, func() { code = run(args) })
	if code != 0 {
		t.Errorf("run(%v) = %d, want 0", args, code)
	}
	if out == "" {
		t.Error("audit of annotated packages printed no inventory")
	}
}

func TestAuditDetectsDefects(t *testing.T) {
	// The audit fixture contains a stale suppression, an unknown verb and
	// an unjustified directive; the audit must fail on it.
	args := []string{"-all", "-audit", "../../internal/analysis/testdata/src/audit"}
	var code int
	out := captureStdout(t, func() { code = run(args) })
	if code != 1 {
		t.Fatalf("run(%v) = %d, want 1\n%s", args, code, out)
	}
}

func TestAuditJSONShape(t *testing.T) {
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-all", "-audit", "-json", "../../internal/analysis/testdata/src/audit"})
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var res analysis.AuditResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("audit output is not valid JSON: %v\n%s", err, out)
	}
	if len(res.Directives) == 0 {
		t.Error("audit JSON has an empty directive inventory")
	}
	if len(res.Stale) == 0 || len(res.Unknown) == 0 || len(res.Unjustified) == 0 {
		t.Errorf("audit JSON missing defect classes: stale=%d unknown=%d unjustified=%d",
			len(res.Stale), len(res.Unknown), len(res.Unjustified))
	}
}
